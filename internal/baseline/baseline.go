// Package baseline implements the comparison systems KV-Direct is evaluated
// against (paper §2.2, §5.1.1, Figure 11, Figure 13, Table 3):
//
//   - a MemC3-style bucketized cuckoo hash table and a FaRM-style
//     chain-associative hopscotch hash table, both real implementations
//     instrumented to count memory accesses per operation at 64 B line
//     granularity (keys inlined in the index and compared in parallel,
//     values in dynamically allocated slabs, per the paper's Figure 11
//     methodology);
//   - analytic throughput models for CPU-based KVS and one-/two-sided
//     RDMA KVS, calibrated with the paper's measured constants.
//
// The hash tables store synthetic uint64 key ids: Figure 11's metric is
// access counts, which depend on table mechanics, not on key contents.
package baseline

import (
	"math"
	"math/rand"

	"kvdirect/internal/model"
)

// AccessStats accumulates per-operation memory-access counts.
type AccessStats struct {
	Ops      uint64
	Accesses uint64
	MaxOp    uint64 // worst single-operation access count (fluctuation)
}

func (s *AccessStats) add(n uint64) {
	s.Ops++
	s.Accesses += n
	if n > s.MaxOp {
		s.MaxOp = n
	}
}

// PerOp returns average accesses per operation.
func (s AccessStats) PerOp() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.Accesses) / float64(s.Ops)
}

// Layout constants shared by the baseline tables: 8-byte slots (key
// tag + pointer) packed eight per 64 B line; values (with their full keys
// for verification) live in slab objects of 16 B granularity with a small
// header.
const (
	slotBytes       = 8
	slotsPerLine    = 8
	valueHeader     = 8 // object metadata (key length, flags, free-list link)
	valueGranule    = 16
	cuckooWays      = 4 // MemC3: 4-way set-associative buckets
	hopscotchH      = 8 // FaRM: neighborhood of one cache line
	maxCuckooKicks  = 500
	chainBlockSlots = 8 // FaRM chain-associative overflow block
)

// valueBytes returns the slab footprint of a kvSize payload.
func valueBytes(kvSize int) int {
	n := kvSize + valueHeader
	return (n + valueGranule - 1) / valueGranule * valueGranule
}

// --- MemC3-style bucketized cuckoo hash ---

// Cuckoo is a 4-way bucketized cuckoo hash table with two hash functions
// and random-walk kicking, the MemC3 design of Figure 11.
type Cuckoo struct {
	buckets  [][cuckooWays]uint64 // 0 = empty, else key id + 1
	nKeys    int
	kvSize   int
	slabFree int // bytes remaining for value objects
	rng      *rand.Rand

	GetStats AccessStats
	PutStats AccessStats
}

// NewCuckoo builds a cuckoo table for the given total memory budget and
// KV size, dedicating indexRatio of the budget to the bucket array.
func NewCuckoo(totalBytes uint64, kvSize int, indexRatio float64, seed int64) *Cuckoo {
	idxBytes := uint64(float64(totalBytes) * indexRatio)
	nBuckets := int(idxBytes / (cuckooWays * slotBytes))
	if nBuckets < 1 {
		nBuckets = 1
	}
	return &Cuckoo{
		buckets:  make([][cuckooWays]uint64, nBuckets),
		kvSize:   kvSize,
		slabFree: int(totalBytes - uint64(nBuckets*cuckooWays*slotBytes)),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

func (c *Cuckoo) h1(key uint64) int { return int(mix64(key) % uint64(len(c.buckets))) }
func (c *Cuckoo) h2(key uint64) int {
	return int(mix64(key^0x5851F42D4C957F2D) % uint64(len(c.buckets)))
}

// lookup returns (bucket, way, accesses) for key, or found=false.
func (c *Cuckoo) lookup(key uint64) (b, way int, accesses uint64, found bool) {
	b1 := c.h1(key)
	accesses++ // read bucket 1
	for w := 0; w < cuckooWays; w++ {
		if c.buckets[b1][w] == key+1 {
			return b1, w, accesses, true
		}
	}
	b2 := c.h2(key)
	accesses++ // read bucket 2
	for w := 0; w < cuckooWays; w++ {
		if c.buckets[b2][w] == key+1 {
			return b2, w, accesses, true
		}
	}
	return 0, 0, accesses, false
}

// Get performs a lookup plus one slab access for the value.
func (c *Cuckoo) Get(key uint64) bool {
	_, _, acc, found := c.lookup(key)
	if found {
		acc++ // read value object
	}
	c.GetStats.add(acc)
	return found
}

// NumKeys returns the number of stored keys.
func (c *Cuckoo) NumKeys() int { return c.nKeys }

// Utilization returns payload bytes over the total memory budget.
func (c *Cuckoo) Utilization(totalBytes uint64) float64 {
	return float64(c.nKeys*c.kvSize) / float64(totalBytes)
}

// Put inserts or updates key, counting bucket and slab accesses,
// including cuckoo kicks on insertion under pressure.
func (c *Cuckoo) Put(key uint64) bool {
	_, _, acc, found := c.lookup(key)
	if found {
		acc++ // write value object in place
		c.PutStats.add(acc)
		return true
	}
	// Insert: need slab space for the value object.
	vb := valueBytes(c.kvSize)
	if c.slabFree < vb {
		c.PutStats.add(acc)
		return false
	}
	acc++ // write value object
	// Try a free way in either bucket.
	for _, bi := range []int{c.h1(key), c.h2(key)} {
		for w := 0; w < cuckooWays; w++ {
			if c.buckets[bi][w] == 0 {
				c.buckets[bi][w] = key + 1
				acc++ // write bucket
				c.slabFree -= vb
				c.nKeys++
				c.PutStats.add(acc)
				return true
			}
		}
	}
	// Random-walk kicking: displace a random victim to its alternate
	// bucket until a free slot appears. Each kick is one bucket read +
	// one bucket write.
	cur := key
	bi := c.h1(key)
	for kick := 0; kick < maxCuckooKicks; kick++ {
		w := c.rng.Intn(cuckooWays)
		victim := c.buckets[bi][w] - 1
		c.buckets[bi][w] = cur + 1
		acc++ // write bucket with the new occupant
		cur = victim
		// Victim moves to its alternate bucket: it was resident in bi,
		// which is one of its two hash buckets; the alternate is the other.
		alt := c.h1(cur)
		if alt == bi {
			alt = c.h2(cur)
		}
		acc++ // read alternate bucket
		for w2 := 0; w2 < cuckooWays; w2++ {
			if c.buckets[alt][w2] == 0 {
				c.buckets[alt][w2] = cur + 1
				acc++ // write alternate bucket
				c.slabFree -= vb
				c.nKeys++
				c.PutStats.add(acc)
				return true
			}
		}
		bi = alt
	}
	// Kick limit exceeded: insertion fails (the table is effectively
	// full; MemC3 would trigger a rehash). Restore is skipped — callers
	// treat failure as capacity exhaustion.
	c.PutStats.add(acc)
	return false
}

// Delete removes key (for churn experiments). Accesses: lookup + bucket
// write; the slab object is freed without extra DMA (free-list push).
func (c *Cuckoo) Delete(key uint64) bool {
	b, w, acc, found := c.lookup(key)
	if !found {
		return false
	}
	c.buckets[b][w] = 0
	acc++
	_ = acc
	c.slabFree += valueBytes(c.kvSize)
	c.nKeys--
	return true
}

// --- FaRM-style chain-associative hopscotch hash ---

// Hopscotch is a hopscotch hash table with a one-cache-line neighborhood
// (H=8) and per-bucket overflow chains, the FaRM design of Figure 11.
type Hopscotch struct {
	slots    []uint64         // 0 = empty, else key id + 1
	home     []int32          // home bucket of each occupant (-1 = empty)
	chains   map[int][]uint64 // overflow chains per home bucket
	nKeys    int
	kvSize   int
	slabFree int

	GetStats AccessStats
	PutStats AccessStats
}

// NewHopscotch builds a hopscotch table with the given memory budget and
// index ratio.
func NewHopscotch(totalBytes uint64, kvSize int, indexRatio float64) *Hopscotch {
	idxBytes := uint64(float64(totalBytes) * indexRatio)
	n := int(idxBytes / slotBytes)
	if n < hopscotchH {
		n = hopscotchH
	}
	h := &Hopscotch{
		slots:    make([]uint64, n),
		home:     make([]int32, n),
		chains:   map[int][]uint64{},
		kvSize:   kvSize,
		slabFree: int(totalBytes - uint64(n*slotBytes)),
	}
	for i := range h.home {
		h.home[i] = -1
	}
	return h
}

func (h *Hopscotch) bucket(key uint64) int { return int(mix64(key) % uint64(len(h.slots))) }

// lines returns how many 64 B slot-lines the slot range [a,b) touches.
func lines(a, b int) uint64 {
	if b <= a {
		return 0
	}
	return uint64(b-1)/slotsPerLine - uint64(a)/slotsPerLine + 1
}

// NumKeys returns the number of stored keys.
func (h *Hopscotch) NumKeys() int { return h.nKeys }

// Utilization returns payload bytes over the total memory budget.
func (h *Hopscotch) Utilization(totalBytes uint64) float64 {
	return float64(h.nKeys*h.kvSize) / float64(totalBytes)
}

// find locates key: neighborhood scan then overflow chain.
func (h *Hopscotch) find(key uint64) (slot int, inChain bool, accesses uint64, found bool) {
	b := h.bucket(key)
	end := b + hopscotchH
	if end > len(h.slots) {
		end = len(h.slots)
	}
	accesses++ // neighborhood read: one contiguous 64 B DMA
	for i := b; i < end; i++ {
		if h.slots[i] == key+1 {
			return i, false, accesses, true
		}
	}
	if chain, ok := h.chains[b]; ok {
		// Each chain block of 8 slots is one access.
		for bi := 0; bi*chainBlockSlots < len(chain); bi++ {
			accesses++
			lo := bi * chainBlockSlots
			hi := lo + chainBlockSlots
			if hi > len(chain) {
				hi = len(chain)
			}
			for _, k := range chain[lo:hi] {
				if k == key+1 {
					return 0, true, accesses, true
				}
			}
		}
	}
	return 0, false, accesses, false
}

// Get performs a lookup plus one slab access for the value.
func (h *Hopscotch) Get(key uint64) bool {
	_, _, acc, found := h.find(key)
	if found {
		acc++
	}
	h.GetStats.add(acc)
	return found
}

// Put inserts or updates key. Insertion searches linearly for a free
// slot and bubbles it back into the neighborhood (hopscotch moves); when
// bubbling fails the key overflows into the home bucket's chain.
func (h *Hopscotch) Put(key uint64) bool {
	_, _, acc, found := h.find(key)
	if found {
		acc++ // value write
		h.PutStats.add(acc)
		return true
	}
	vb := valueBytes(h.kvSize)
	if h.slabFree < vb {
		h.PutStats.add(acc)
		return false
	}
	acc++ // value object write
	b := h.bucket(key)

	// Linear probe for the nearest free slot at/after b.
	free := -1
	probeEnd := b
	for i := b; i < len(h.slots) && i < b+4096; i++ {
		if h.slots[i] == 0 {
			free = i
			probeEnd = i + 1
			break
		}
	}
	acc += lines(b, probeEnd) // probe reads (line granularity)

	if free < 0 {
		// No free slot in probe range: overflow chain.
		return h.chainInsert(b, key, acc, vb)
	}

	// Bubble the free slot back until it is within [b, b+H).
	for free >= b+hopscotchH {
		moved := false
		// Find an occupant in [free-H+1, free) whose home allows it to
		// move into `free`.
		for j := free - hopscotchH + 1; j < free; j++ {
			if j < 0 || h.slots[j] == 0 {
				continue
			}
			hm := int(h.home[j])
			if free < hm+hopscotchH {
				// Move j -> free: one read + one write.
				h.slots[free] = h.slots[j]
				h.home[free] = h.home[j]
				h.slots[j] = 0
				h.home[j] = -1
				acc += 2
				free = j
				moved = true
				break
			}
		}
		if !moved {
			// Bubbling stuck: chain-associative overflow (FaRM's fix).
			return h.chainInsert(b, key, acc, vb)
		}
	}
	h.slots[free] = key + 1
	h.home[free] = int32(b)
	acc++ // slot-line write
	h.slabFree -= vb
	h.nKeys++
	h.PutStats.add(acc)
	return true
}

func (h *Hopscotch) chainInsert(b int, key uint64, acc uint64, vb int) bool {
	h.chains[b] = append(h.chains[b], key+1)
	acc++ // chain block write
	h.slabFree -= vb
	h.nKeys++
	h.PutStats.add(acc)
	return true
}

// Delete removes key.
func (h *Hopscotch) Delete(key uint64) bool {
	slot, inChain, _, found := h.find(key)
	if !found {
		return false
	}
	if inChain {
		b := h.bucket(key)
		chain := h.chains[b]
		for i, k := range chain {
			if k == key+1 {
				chain[i] = chain[len(chain)-1]
				h.chains[b] = chain[:len(chain)-1]
				break
			}
		}
	} else {
		h.slots[slot] = 0
		h.home[slot] = -1
	}
	h.slabFree += valueBytes(h.kvSize)
	h.nKeys--
	return true
}

// --- throughput models ---

// CPUKVSOpsPerSec models a CPU-based KVS server (paper §2.2): per-core
// KV throughput times core count, with or without software batching.
func CPUKVSOpsPerSec(cores int, batched bool) float64 {
	per := model.CPUKVOpsPerCore
	if batched {
		per = model.CPUKVOpsPerCoreBatched
	}
	return per * float64(cores)
}

// TwoSidedRDMAOpsPerSec models a two-sided RDMA KVS (Figure 1a): every KV
// operation costs two NIC messages (request + response) and server CPU
// processing, so throughput is bounded by the smaller of half the message
// rate and the CPU.
func TwoSidedRDMAOpsPerSec(cores int) float64 {
	return math.Min(model.RDMAMessageRateOps/2, CPUKVSOpsPerSec(cores, true))
}

// OneSidedRDMAOpsPerSec models a one-sided RDMA KVS (Figure 1b): GETs
// bypass the CPU at the NIC message rate but need avgReads round trips
// per operation; PUTs fall back to the server CPU.
func OneSidedRDMAOpsPerSec(getRatio float64, avgGetReads float64, cores int) float64 {
	if avgGetReads < 1 {
		avgGetReads = 1
	}
	getCap := model.RDMAMessageRateOps / avgGetReads
	putCap := CPUKVSOpsPerSec(cores, true)
	// Weighted harmonic combination: the mix saturates when either side
	// is exhausted.
	rate := math.Inf(1)
	if getRatio > 0 {
		rate = math.Min(rate, getCap/getRatio)
	}
	if getRatio < 1 {
		rate = math.Min(rate, putCap/(1-getRatio))
	}
	return rate
}

// Atomics baselines for Figure 13a: throughput of fetch-and-add spread
// over n distinct keys. Dependent operations on one key serialize on the
// network/PCIe round trip; independent keys scale linearly up to the
// device cap.

// OneSidedRDMAAtomicsOps: RDMA NIC atomics measured at 2.24 Mops for a
// single key [Kalia et al.], scaling with keys to the message-rate cap.
func OneSidedRDMAAtomicsOps(keys int) float64 {
	return math.Min(float64(keys)*model.RDMAOneSidedAtomicsOps, model.RDMAMessageRateOps)
}

// TwoSidedRDMAAtomicsOps: server-CPU-mediated atomics; a single hot key
// serializes on one core's lock, multiple keys spread across cores.
func TwoSidedRDMAAtomicsOps(keys, cores int) float64 {
	perKey := model.CPUKVOpsPerCore
	cap := CPUKVSOpsPerSec(cores, true)
	return math.Min(float64(keys)*perKey, math.Min(cap, model.RDMAMessageRateOps))
}
