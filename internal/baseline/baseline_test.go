package baseline

import (
	"math/rand"
	"testing"

	"kvdirect/internal/model"
)

func TestCuckooPutGet(t *testing.T) {
	c := NewCuckoo(1<<20, 10, 0.3, 1)
	for k := uint64(1); k <= 1000; k++ {
		if !c.Put(k) {
			t.Fatalf("put %d failed", k)
		}
	}
	for k := uint64(1); k <= 1000; k++ {
		if !c.Get(k) {
			t.Fatalf("get %d missed", k)
		}
	}
	if c.Get(99999) {
		t.Error("get of absent key succeeded")
	}
	if c.NumKeys() != 1000 {
		t.Errorf("NumKeys = %d", c.NumKeys())
	}
}

func TestCuckooGetAccessesBetween2And3(t *testing.T) {
	// Bucket read(s) + value read: 2 if in first bucket, 3 if in second.
	c := NewCuckoo(1<<20, 10, 0.3, 2)
	for k := uint64(1); k <= 5000; k++ {
		c.Put(k)
	}
	c.GetStats = AccessStats{}
	for k := uint64(1); k <= 5000; k++ {
		c.Get(k)
	}
	per := c.GetStats.PerOp()
	if per < 2.0 || per > 3.0 {
		t.Errorf("cuckoo GET = %.2f accesses, want in [2,3]", per)
	}
}

func TestCuckooKicksUnderPressure(t *testing.T) {
	// Fill to high load factor: inserts should show kick-driven
	// fluctuations (MaxOp much larger than the mean).
	c := NewCuckoo(1<<18, 10, 0.08, 3) // small index → high load factor
	for k := uint64(1); k <= 1<<20; k++ {
		if !c.Put(k) {
			break
		}
	}
	if c.PutStats.MaxOp < 6 {
		t.Errorf("expected kick chains under pressure, max op = %d accesses",
			c.PutStats.MaxOp)
	}
	lf := float64(c.NumKeys()) / float64(len(c.buckets)*cuckooWays)
	if lf < 0.8 {
		t.Errorf("cuckoo filled to load factor %.2f, want > 0.8", lf)
	}
}

func TestCuckooDeleteChurn(t *testing.T) {
	c := NewCuckoo(1<<20, 10, 0.3, 4)
	for k := uint64(1); k <= 1000; k++ {
		c.Put(k)
	}
	for k := uint64(1); k <= 500; k++ {
		if !c.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if c.NumKeys() != 500 {
		t.Errorf("NumKeys = %d after churn", c.NumKeys())
	}
	if c.Get(250) {
		t.Error("deleted key still present")
	}
	if !c.Get(750) {
		t.Error("surviving key lost")
	}
}

func TestHopscotchPutGet(t *testing.T) {
	h := NewHopscotch(1<<20, 10, 0.3)
	for k := uint64(1); k <= 1000; k++ {
		if !h.Put(k) {
			t.Fatalf("put %d failed", k)
		}
	}
	for k := uint64(1); k <= 1000; k++ {
		if !h.Get(k) {
			t.Fatalf("get %d missed", k)
		}
	}
	if h.Get(99999) {
		t.Error("absent key found")
	}
}

func TestHopscotchGetStaysCheapAtHighLoad(t *testing.T) {
	// The hopscotch selling point (Figure 11a at high utilization): GETs
	// stay ~2 accesses (neighborhood + value) even under heavy load.
	h := NewHopscotch(1<<20, 10, 0.055)
	target := uint64(float64(len(h.slots)) * 0.9)
	for k := uint64(1); k <= target; k++ {
		if !h.Put(k) {
			break
		}
	}
	lf := float64(h.NumKeys()) / float64(len(h.slots))
	if lf < 0.85 {
		t.Fatalf("load factor %.2f too low for the test", lf)
	}
	h.GetStats = AccessStats{}
	for k := uint64(1); k <= 2000; k++ {
		h.Get(k)
	}
	if per := h.GetStats.PerOp(); per > 2.8 {
		t.Errorf("hopscotch GET = %.2f accesses at load %.2f, want <= 2.8", per, lf)
	}
}

func TestHopscotchPutExpensiveAtHighLoad(t *testing.T) {
	// Figure 11b: hopscotch PUT is significantly worse than GET under
	// high utilization (probing + bubbling).
	h := NewHopscotch(1<<20, 10, 0.055)
	target := uint64(float64(len(h.slots)) * 0.92)
	for k := uint64(1); k <= target; k++ {
		if !h.Put(k) {
			break
		}
	}
	// Churn: delete and reinsert to measure steady-state insert cost.
	rng := rand.New(rand.NewSource(5))
	h.PutStats = AccessStats{}
	next := uint64(1 << 21)
	for i := 0; i < 2000; i++ {
		victim := uint64(rng.Intn(h.NumKeys())) + 1
		if h.Delete(victim) {
			h.Put(next)
			next++
		}
	}
	getPer := 2.0
	putPer := h.PutStats.PerOp()
	if putPer < getPer {
		t.Errorf("high-load hopscotch PUT (%.2f) should cost more than GET (~2)", putPer)
	}
}

func TestHopscotchDelete(t *testing.T) {
	h := NewHopscotch(1<<20, 10, 0.3)
	for k := uint64(1); k <= 100; k++ {
		h.Put(k)
	}
	if !h.Delete(50) || h.Get(50) {
		t.Error("delete failed")
	}
	if h.Delete(50) {
		t.Error("double delete succeeded")
	}
	if h.NumKeys() != 99 {
		t.Errorf("NumKeys = %d", h.NumKeys())
	}
}

func TestSmallKVUtilizationCapped(t *testing.T) {
	// Figure 11: MemC3/FaRM cannot reach high memory utilization for
	// 10 B KVs (index + slab overhead dominates).
	total := uint64(1 << 20)
	c := NewCuckoo(total, 10, 0.3, 6)
	for k := uint64(1); ; k++ {
		if !c.Put(k) {
			break
		}
	}
	if u := c.Utilization(total); u > 0.55 {
		t.Errorf("cuckoo 10 B utilization = %.2f, should cap below 0.55", u)
	}
	h := NewHopscotch(total, 10, 0.3)
	for k := uint64(1); ; k++ {
		if !h.Put(k) {
			break
		}
	}
	if u := h.Utilization(total); u > 0.55 {
		t.Errorf("hopscotch 10 B utilization = %.2f, should cap below 0.55", u)
	}
}

func TestValueBytesRounding(t *testing.T) {
	cases := []struct{ kv, want int }{
		{8, 16}, {10, 32}, {24, 32}, {56, 64}, {248, 256},
	}
	for _, c := range cases {
		if got := valueBytes(c.kv); got != c.want {
			t.Errorf("valueBytes(%d) = %d, want %d", c.kv, got, c.want)
		}
	}
}

func TestCPUModel(t *testing.T) {
	plain := CPUKVSOpsPerSec(16, false)
	batched := CPUKVSOpsPerSec(16, true)
	if plain != 16*model.CPUKVOpsPerCore || batched != 16*model.CPUKVOpsPerCoreBatched {
		t.Errorf("CPU model wrong: %g / %g", plain, batched)
	}
	if batched <= plain {
		t.Error("batching should help")
	}
}

func TestRDMAModels(t *testing.T) {
	two := TwoSidedRDMAOpsPerSec(16)
	if two > model.RDMAMessageRateOps || two > CPUKVSOpsPerSec(16, true) {
		t.Errorf("two-sided = %g exceeds caps", two)
	}
	// Pure GET one-sided beats two-sided (CPU bypass).
	oneGet := OneSidedRDMAOpsPerSec(1.0, 1.2, 16)
	if oneGet <= two {
		t.Errorf("one-sided pure GET (%.0f) should beat two-sided (%.0f)", oneGet, two)
	}
	// Write-heavy one-sided collapses to CPU throughput.
	onePut := OneSidedRDMAOpsPerSec(0.0, 1.2, 16)
	if onePut != CPUKVSOpsPerSec(16, true) {
		t.Errorf("one-sided pure PUT = %g, want CPU bound", onePut)
	}
}

func TestAtomicsBaselinesScaleThenSaturate(t *testing.T) {
	one1 := OneSidedRDMAAtomicsOps(1)
	if one1 != model.RDMAOneSidedAtomicsOps {
		t.Errorf("1-key one-sided atomics = %g", one1)
	}
	one2 := OneSidedRDMAAtomicsOps(2)
	if one2 != 2*one1 {
		t.Error("one-sided atomics should scale linearly at low key counts")
	}
	oneBig := OneSidedRDMAAtomicsOps(1 << 20)
	if oneBig != model.RDMAMessageRateOps {
		t.Errorf("one-sided atomics should saturate at message rate, got %g", oneBig)
	}
	two1 := TwoSidedRDMAAtomicsOps(1, 16)
	if two1 >= OneSidedRDMAAtomicsOps(1<<20) {
		t.Error("single-key two-sided atomics should be far from saturation")
	}
}

func TestAccessStatsPerOp(t *testing.T) {
	var s AccessStats
	if s.PerOp() != 0 {
		t.Error("empty stats PerOp should be 0")
	}
	s.add(2)
	s.add(4)
	if s.PerOp() != 3 || s.MaxOp != 4 {
		t.Errorf("PerOp=%g MaxOp=%d", s.PerOp(), s.MaxOp)
	}
}
