package experiments

import (
	"fmt"

	"kvdirect/internal/core"
	"kvdirect/internal/model"
	"kvdirect/internal/workload"
)

// Table3 reproduces Table 3, "Comparison of with state-of-the-art KVS
// systems": throughput, power efficiency and tail latency. Rows for
// published systems carry the numbers reported in their papers (cited by
// KV-Direct); KV-Direct rows are computed from this repository's models.
func Table3(sc Scale) []*Table {
	t := &Table{
		ID:      "table3",
		Title:   "Comparison with state-of-the-art KVS systems",
		Columns: []string{"system", "tput(Mops)", "power(W)", "efficiency(Kops/W)", "tail latency(us)"},
		Notes: "published-system rows cite their papers' reported numbers; KV-Direct rows computed from the model " +
			"(parenthesized efficiency counts only the power KV-Direct adds to an otherwise-busy host)",
	}
	type row struct {
		name        string
		mops, watts float64
		latencyUs   float64
	}
	published := []row{
		{"Memcached", 1.5, 258, 50},
		{"MemC3", 4.3, 386, 95},
		{"RAMCloud", 6, 280, 5},
		{"MICA (CPU, batched)", 137, 399, 81},
		{"FaRM (one-sided RDMA)", 6, 87, 4.5},
		{"DrTM-KV (RDMA+HTM)", 115.7, 743, 3.4},
		{"HERD (two-sided RDMA)", 98.3, 683, 5},
		{"Xilinx FPGA KVS", 13.2, 55, 3.5},
		{"Mega-KV (GPU)", 166, 950, 280},
	}
	for _, r := range published {
		t.Add(r.name, f1(r.mops), f1(r.watts), f1(r.mops*1e6/r.watts/1e3), f1(r.latencyUs))
	}

	one := model.PeakOpsPerSec
	t.Add("KV-Direct (1 NIC)", mops(one), f1(model.KVDirectSystemPower),
		fmt.Sprintf("%.1f (%.1f)", model.PowerEfficiency(one)/1e3, model.DeltaPowerEfficiency(one)/1e3),
		f1(4.3))
	ten := model.MultiNICThroughput(122e6, 10, model.HostMemBandwidthBytesPerSec)
	tenPower := model.ServerIdlePower + 10*model.KVDirectDeltaPower
	t.Add("KV-Direct (10 NICs)", mops(ten), f1(tenPower),
		fmt.Sprintf("%.1f (%.1f)", ten/tenPower/1e3, ten/(10*model.KVDirectDeltaPower)/1e3),
		f1(4.3))
	return []*Table{t}
}

// Table4 reproduces Table 4, "Impact on CPU performance": how host
// workloads degrade while KV-Direct runs at peak, modeled as memory
// bandwidth contention — KV-Direct's DMA traffic is a small fraction of
// the dual-socket machine's DRAM bandwidth, so the impact is minimal
// (the paper's point).
func Table4(sc Scale) []*Table {
	// Peak DMA traffic: both PCIe endpoints moving 64 B lines.
	dmaBytes := float64(model.PCIeEndpoints) * model.PCIeRead64BOpsPerSec * model.CacheLineBytes
	share := dmaBytes / model.HostMemBandwidthBytesPerSec

	// M/M/1-flavored degradation: latency inflates with utilization of
	// the shared memory controller; throughput loses the stolen share.
	latencyFactor := 1 / (1 - share)

	t := &Table{
		ID:      "table4",
		Title:   "Impact on host CPU workloads while KV-Direct runs at peak",
		Columns: []string{"host workload", "idle KV-Direct", "peak KV-Direct", "degradation"},
		Notes: fmt.Sprintf("KV-Direct peak DMA uses %.1f GB/s = %.1f%% of the host's %.0f GB/s DRAM bandwidth",
			dmaBytes/1e9, share*100, model.HostMemBandwidthBytesPerSec/1e9),
	}
	randLat := float64(model.HostDRAMReadNs)
	t.Add("random 64 B read latency (ns)", f1(randLat), f1(randLat*latencyFactor),
		fmt.Sprintf("+%.1f%%", (latencyFactor-1)*100))
	randTput := model.CPURandom64BOpsPerCore * float64(model.CPUCoresPerServer) / 1e6
	t.Add("random 64 B throughput (Mops)", f1(randTput), f1(randTput*(1-share)),
		fmt.Sprintf("-%.1f%%", share*100))
	seq := model.HostMemBandwidthBytesPerSec / 1e9
	t.Add("sequential read bandwidth (GB/s)", f1(seq), f1(seq*(1-share)),
		fmt.Sprintf("-%.1f%%", share*100))
	return []*Table{t}
}

// Scaling reproduces §5.2's multi-NIC experiment: near-linear scaling to
// 1.22 GOps with 10 programmable NICs in one commodity server, each NIC
// owning a disjoint memory partition on its own PCIe path.
func Scaling(sc Scale) []*Table {
	t := &Table{
		ID:      "scaling",
		Title:   "Multi-NIC scaling (YCSB average per-NIC rate 122 Mops)",
		Columns: []string{"NICs", "throughput(Gops)", "scaling efficiency", "power(W)", "Mops/W"},
		Notes:   "10 NICs: 1.22 GOps, an order of magnitude over prior single-server systems (paper abstract)",
	}
	perNIC := 122e6
	for _, nics := range []int{1, 2, 4, 6, 8, 10} {
		tput := model.MultiNICThroughput(perNIC, nics, model.HostMemBandwidthBytesPerSec)
		eff := tput / (perNIC * float64(nics))
		power := model.ServerIdlePower + float64(nics)*model.KVDirectDeltaPower
		t.Add(itoa(nics), f2(tput/1e9), f2(eff), f1(power), f1(tput/power/1e6))
	}
	return []*Table{t, scalingFunctional(sc)}
}

// scalingFunctional runs a sharded YCSB stream through real per-NIC
// stores (the functional analogue of the 10-NIC deployment) and checks
// the two properties linear scaling rests on: hash sharding balances
// load, and per-shard resource cost does not grow with shard count.
func scalingFunctional(sc Scale) *Table {
	t := &Table{
		ID:      "scaling-functional",
		Title:   "Functional sharding check (real stores, hash-routed YCSB)",
		Columns: []string{"shards", "ops balance (min/max)", "DMAs/op", "aggregate modeled Mops"},
		Notes: "each shard is an independent KV processor with its own memory partition; per-op cost does not grow " +
			"with shard count, so aggregate capacity is n x per-NIC (the small scaled corpus caches unusually well, " +
			"pinning every shard at the clock bound)",
	}
	for _, n := range []int{1, 2, 4, 8} {
		stores := make([]*core.Store, n)
		for i := range stores {
			s, err := core.NewStore(core.Config{
				MemoryBytes: sc.MemBytes / uint64(n), InlineThreshold: 15,
				HashIndexRatio: 0.9, Seed: uint64(sc.Seed) + uint64(i),
				NoOrderedIndex: true,
			})
			if err != nil {
				panic(err)
			}
			stores[i] = s
		}
		gen := workload.New(workload.Config{
			Keys: uint64(sc.Ops), Skew: 0.99, GetRatio: 0.95, KeySize: 5, ValSize: 5,
			Seed: sc.Seed,
		})
		route := func(key []byte) *core.Store {
			h := uint64(14695981039346656037)
			for _, b := range key {
				h ^= uint64(b)
				h *= 1099511628211
			}
			return stores[(h^h>>33)%uint64(n)]
		}
		// Load then run.
		for id := uint64(0); id < uint64(sc.Ops); id++ {
			key := gen.KeyBytes(id)[:5]
			if err := route(key).Put(key, gen.ValueBytes(id, 0)); err != nil {
				panic(err)
			}
		}
		counts := make([]uint64, n)
		for i, s := range stores {
			counts[i] = s.NumKeys()
			s.ResetCounters()
		}
		for i := 0; i < sc.Ops*2; i++ {
			op := gen.Next()
			key := gen.KeyBytes(op.KeyID)[:5]
			s := route(key)
			if op.Kind == workload.Get {
				s.SubmitGet(key, nil)
			} else {
				s.SubmitPut(key, gen.ValueBytes(op.KeyID, uint64(i)), nil)
			}
		}
		var dmas, minC, maxC uint64
		minC = ^uint64(0)
		aggregate := 0.0
		for i, s := range stores {
			s.Flush()
			st := s.Stats()
			dmas += st.Mem.Accesses()
			if counts[i] < minC {
				minC = counts[i]
			}
			if counts[i] > maxC {
				maxC = counts[i]
			}
			perOp := float64(st.Mem.Accesses()) / (float64(sc.Ops*2) / float64(n))
			cap := float64(model.PCIeEndpoints) * model.PCIeRead64BOpsPerSec
			rate := model.PeakOpsPerSec
			if perOp > 0 && cap/perOp < rate {
				rate = cap / perOp
			}
			aggregate += rate
		}
		t.Add(itoa(n),
			fmt.Sprintf("%d/%d", minC, maxC),
			f2(float64(dmas)/float64(sc.Ops*2)),
			mops(aggregate))
	}
	return t
}
