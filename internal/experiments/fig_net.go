package experiments

import (
	"kvdirect/internal/model"
	"kvdirect/internal/netmodel"
	"kvdirect/internal/wire"
)

// Fig15 reproduces Figure 15, "Efficiency of network batching":
// throughput and latency versus batched KV size, with and without
// client-side batching. Wire sizes come from the real codec
// (wire.EncodedSize), not an estimate.
func Fig15(sc Scale) []*Table {
	net := netmodel.DefaultConfig()
	tput := &Table{
		ID:      "fig15a",
		Title:   "Network throughput vs batched KV size (Mops)",
		Columns: []string{"KV size(B)", "no batching", "batching", "gain"},
		Notes:   "paper: up to 4x gain for its batched sizes with <1 us added latency; smaller KVs gain more (header-dominated)",
	}
	lat := &Table{
		ID:      "fig15b",
		Title:   "Network latency vs batched KV size (us)",
		Columns: []string{"KV size(B)", "no batching", "batching"},
	}
	for _, kv := range []int{10, 16, 32, 64, 128, 254} {
		opWire := wireBytesPerOp(kv)
		batch := net.BatchFor(opWire)
		single := net.OpsPerSecond(opWire, opWire, 1)
		batched := net.OpsPerSecond(opWire, opWire, batch)
		tput.Add(itoa(kv), mops(single), mops(batched), f2(batched/single))
		lat.Add(itoa(kv),
			f2(net.LatencyNs(opWire, false)/1000),
			f2(net.LatencyNs(opWire*batch, true)/1000))
	}
	return []*Table{tput, lat}
}

// wireBytesPerOp measures the real per-op wire footprint of a batch of
// same-size PUTs (the compressed steady state) using the codec itself.
func wireBytesPerOp(kvSize int) int {
	keyLen := 8
	if kvSize < 10 {
		keyLen = kvSize - 1
	}
	valLen := kvSize - keyLen
	reqs := make([]wire.Request, 32)
	for i := range reqs {
		k := make([]byte, keyLen)
		v := make([]byte, valLen)
		k[0] = byte(i)
		v[0] = byte(i) // distinct values defeat same-value elision
		reqs[i] = wire.Request{Op: wire.OpPut, Key: k, Value: v}
	}
	n, err := wire.EncodedSize(reqs)
	if err != nil {
		panic(err)
	}
	return (n - wire.HeaderBytes) / len(reqs)
}

// Table2 reproduces Table 2: throughput of atomic vector update against
// the alternatives (one key per element; fetch the whole vector to the
// client), in GB/s of vector data processed.
func Table2(sc Scale) []*Table {
	net := netmodel.DefaultConfig()
	t := &Table{
		ID:    "table2",
		Title: "Vector operation throughput (GB/s of vector data)",
		Columns: []string{"vector size(B)", "update w/ return", "update w/o return",
			"one key per element", "fetch to client"},
		Notes: "alternatives also lack consistency within the vector (paper Table 2)",
	}
	for _, vec := range []int{64, 128, 256, 512, 1024} {
		v := net.Vector(vec, 4, model.PCIeAchievableTwoEP)
		t.Add(itoa(vec), gbps(v.UpdateWithReturn), gbps(v.UpdateWithoutReturn),
			gbps(v.OneKeyPerElement), gbps(v.FetchToClient))
	}
	return []*Table{t}
}
