package experiments

import (
	"fmt"

	"kvdirect/internal/core"
	"kvdirect/internal/model"
	"kvdirect/internal/ooo"
	"kvdirect/internal/workload"
)

// Ablations quantifies each of KV-Direct's design choices in isolation by
// toggling it off on an otherwise-identical store and measuring the same
// 10 B-KV YCSB point. It goes beyond the paper's figures (which compare
// against external baselines) by holding everything else constant.
func Ablations(sc Scale) []*Table {
	t := &Table{
		ID:    "ablation",
		Title: "Design-choice ablations (10 B KVs, 50% GET, long-tail)",
		Columns: []string{"configuration", "PCIe DMAs/op", "NIC DRAM ops/op",
			"merge ratio", "modeled Mops"},
		Notes: "each row toggles one mechanism off; the full design is the reference",
	}

	type variant struct {
		name string
		cfg  core.Config
	}
	// NoOrderedIndex everywhere below: the figures reproduce the paper's
	// hash-only data path, which predates the ordered secondary index.
	base := core.Config{MemoryBytes: sc.MemBytes, InlineThreshold: 15, HashIndexRatio: 0.9, Seed: uint64(sc.Seed), NoOrderedIndex: true}
	noInline := base
	noInline.InlineThreshold = -1
	noInline.HashIndexRatio = chooseRatio(10, 0)
	noCache := base
	noCache.DisableCache = true
	noOoO := base
	noOoO.DisableOoO = true

	for _, v := range []variant{
		{"full design", base},
		{"no inline KVs", noInline},
		{"no DRAM load dispatch", noCache},
		{"no out-of-order execution", noOoO},
	} {
		row := measureAblation(sc, v.cfg)
		t.Add(v.name, f2(row.pcie), f2(row.dram), f2(row.merge), mops(row.tput))
	}

	// The OoO ablation's throughput impact shows best on dependent
	// atomics; add the timing-model view.
	ops := zipfStream(sc.SimOps, 0.5, sc.Seed)
	with := ooo.DefaultSimConfig(true).Simulate(ops).OpsPerSec
	without := ooo.DefaultSimConfig(false).Simulate(ops).OpsPerSec
	t.Notes += fmt.Sprintf("; timing model on dependent long-tail ops: OoO %s vs stall %s Mops",
		mops(with), mops(without))
	return []*Table{t}
}

type ablationRow struct {
	pcie, dram, merge, tput float64
}

func measureAblation(sc Scale, cfg core.Config) ablationRow {
	s, err := core.NewStore(cfg)
	if err != nil {
		panic(err)
	}
	const keySize = 5
	gen := workload.New(workload.Config{Keys: 1, KeySize: keySize, ValSize: 5, Seed: sc.Seed})
	var n uint64
	for s.Utilization() < 0.15 {
		if err := s.Put(gen.KeyBytes(n)[:keySize], gen.ValueBytes(n, 0)); err != nil {
			break
		}
		n++
	}
	keys := workload.New(workload.Config{
		Keys: n, Skew: 0.99, GetRatio: 0.5, KeySize: keySize, ValSize: 5, Seed: sc.Seed + 1,
	})
	// Warm the cache.
	for i := 0; i < sc.Ops; i++ {
		s.Get(keys.KeyBytes(keys.NextKey())[:keySize])
	}
	s.ResetCounters()
	for i := 0; i < sc.Ops; i++ {
		op := keys.Next()
		key := keys.KeyBytes(op.KeyID)[:keySize]
		if op.Kind == workload.Get {
			s.SubmitGet(key, nil)
		} else {
			s.SubmitPut(key, keys.ValueBytes(op.KeyID, uint64(i)), nil)
		}
	}
	s.Flush()
	st := s.Stats()
	pcie := float64(st.Mem.Accesses()) / float64(sc.Ops)
	dram := float64(st.Cache.DRAMLineReads+st.Cache.DRAMLineWrites) / float64(sc.Ops)

	pcieCap := float64(model.PCIeEndpoints) * model.PCIeRead64BOpsPerSec
	dramCap := model.NICDRAMBytesPerSec / 64
	tput := model.PeakOpsPerSec
	if pcie > 0 && pcieCap/pcie < tput {
		tput = pcieCap / pcie
	}
	if dram > 0 && dramCap/dram < tput {
		tput = dramCap / dram
	}
	return ablationRow{pcie: pcie, dram: dram, merge: st.Engine.MergeRatio(), tput: tput}
}
