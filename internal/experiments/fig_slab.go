package experiments

import (
	"math/rand"
	"runtime"
	"time"

	"kvdirect/internal/slab"
)

// Fig12 reproduces Figure 12: wall-clock time to merge a large population
// of free slab slots, comparing the allocation-bitmap algorithm (random
// memory accesses, single-threaded) against multi-core radix sort. The
// paper merges 4 billion slots in a 16 GiB vector; the scaled run keeps
// the same O(n) algorithms, so the bitmap-vs-radix gap and the core
// scaling shape are preserved.
func Fig12(sc Scale) []*Table {
	n := sc.MergeSlots
	offs := randomFreeSlots(n, sc.Seed)
	region := uint64(n) * 2 * 32 // half the slots of a 32 B-granule region

	t := &Table{
		ID:      "fig12",
		Title:   "Time to merge free slab slots (bitmap vs multi-core radix sort)",
		Columns: []string{"algorithm", "cores", "time(s)", "merged pairs"},
		Notes:   "paper: 4B slots, 30 s bitmap on one core vs 1.8 s radix on 32 cores; scaled to " + itoa(n) + " slots",
	}

	start := time.Now()
	merged, _ := slab.MergeBitmap(offs, 32, region)
	t.Add("bitmap", "1", f2(time.Since(start).Seconds()), itoa(len(merged)))

	coreCounts := []int{1, 2, 4, 8, 16, 32}
	if max := runtime.NumCPU(); max < 32 {
		t.Notes += "; host has " + itoa(max) + " CPU(s) — counts beyond that oversubscribe goroutines and cannot speed up"
	}
	for _, cores := range coreCounts {
		start = time.Now()
		mergedR, _ := slab.MergeRadix(offs, 32, cores)
		t.Add("radix sort", itoa(cores), f2(time.Since(start).Seconds()), itoa(len(mergedR)))
	}
	return []*Table{t}
}

// randomFreeSlots builds a shuffled population of free 32 B slab offsets
// in which roughly half of all buddy pairs are complete (so merging has
// real work to do), mimicking a fragmented heap after workload churn.
func randomFreeSlots(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	offs := make([]uint64, 0, n)
	// Walk buddy pairs; keep both, one, or neither.
	for slot := uint64(0); len(offs) < n; slot += 2 {
		switch rng.Intn(4) {
		case 0: // full pair → mergeable
			offs = append(offs, slot*32, (slot+1)*32)
		case 1:
			offs = append(offs, slot*32)
		case 2:
			offs = append(offs, (slot+1)*32)
		}
	}
	offs = offs[:n]
	rng.Shuffle(len(offs), func(i, j int) { offs[i], offs[j] = offs[j], offs[i] })
	return offs
}
