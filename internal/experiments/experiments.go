// Package experiments regenerates every table and figure of the
// KV-Direct evaluation (paper §5) from this repository's implementations
// and models. Each Fig*/Table* function returns one or more Tables whose
// rows mirror the series the paper plots; cmd/kvdbench prints them and
// bench_test.go wraps them in testing.B benchmarks.
//
// Experiments run at a configurable Scale: Quick keeps everything
// CI-sized; Full uses larger memories and op counts for smoother curves.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one reproduced table or figure, as printable rows.
type Table struct {
	ID      string // e.g. "fig11a"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Add appends one formatted row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Scale sizes an experiment run.
type Scale struct {
	MemBytes   uint64 // simulated host KVS size per store
	Ops        int    // measured operations per data point
	MergeSlots int    // free slab slots for the Figure 12 merge
	SimOps     int    // ops per timing-simulation point
	Seed       int64
}

// Quick is the CI-sized scale (sub-second per figure).
func Quick() Scale {
	return Scale{MemBytes: 4 << 20, Ops: 4000, MergeSlots: 1 << 20, SimOps: 60000, Seed: 1}
}

// Full is the report-quality scale used by cmd/kvdbench.
func Full() Scale {
	return Scale{MemBytes: 64 << 20, Ops: 40000, MergeSlots: 40 << 20, SimOps: 400000, Seed: 1}
}

func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func mops(v float64) string { return fmt.Sprintf("%.1f", v/1e6) }
func gbps(v float64) string { return fmt.Sprintf("%.2f", v/1e9) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
