package experiments

import (
	"fmt"

	"kvdirect/internal/core"
	"kvdirect/internal/model"
	"kvdirect/internal/netmodel"
	"kvdirect/internal/pcie"
	"kvdirect/internal/sim"
	"kvdirect/internal/stats"
	"kvdirect/internal/workload"
)

// ycsbPoint is one measured Figure 16 configuration: a real store filled
// to the target utilization, probed with the YCSB mix, its resource loads
// converted to a predicted throughput by the bottleneck model.
type ycsbPoint struct {
	kvSize      int
	getAccesses float64 // host-memory DMAs per GET
	putAccesses float64 // host-memory DMAs per PUT
	dramPerGet  float64 // NIC DRAM line ops per GET
	dramPerPut  float64
	avgDMABytes float64 // mean payload per DMA (for the PCIe rate curve)
	utilization float64
}

// ycsbStoreConfig tunes the store per KV size as the paper does before
// each benchmark.
func ycsbStoreConfig(sc Scale, kvSize int, seed int64) core.Config {
	// The paper's configuration has no ordered secondary index; don't
	// charge its maintenance DMAs to the reproduced figures.
	cfg := core.Config{MemoryBytes: sc.MemBytes, Seed: uint64(seed), NoOrderedIndex: true}
	if kvSize <= 15 {
		cfg.InlineThreshold = 15
		cfg.HashIndexRatio = 0.9
	} else {
		cfg.InlineThreshold = -1
		cfg.HashIndexRatio = chooseRatio(kvSize, 0)
	}
	return cfg
}

// measureYCSB fills a store and measures per-op resource loads for pure
// GET and pure PUT streams under the given key distribution.
func measureYCSB(sc Scale, kvSize int, longtail bool) ycsbPoint {
	cfg := ycsbStoreConfig(sc, kvSize, sc.Seed)
	s, err := core.NewStore(cfg)
	if err != nil {
		panic(err)
	}
	keySize := 5
	if kvSize > 50 {
		keySize = 10
	}
	valSize := kvSize - keySize

	gen := workload.New(workload.Config{
		Keys: 1, Skew: 0, KeySize: keySize, ValSize: valSize, Seed: sc.Seed,
	})
	// Fill to the target utilization (or as close as the geometry
	// permits). Inline configurations top out lower under the payload
	// metric, so their target is scaled accordingly.
	target := 0.35
	if kvSize <= 15 {
		target = 0.20
	}
	var n uint64
	for s.Utilization() < target {
		key := gen.KeyBytes(n)[:keySize]
		if err := s.Put(key, gen.ValueBytes(n, 0)); err != nil {
			break
		}
		n++
	}
	if n == 0 {
		panic("ycsb: could not insert any keys")
	}

	skew := 0.0
	if longtail {
		skew = 0.99
	}
	keys := workload.New(workload.Config{
		Keys: n, Skew: skew, KeySize: keySize, ValSize: valSize, Seed: sc.Seed + 1,
	})

	pt := ycsbPoint{kvSize: kvSize, utilization: s.Utilization()}

	// Warm the NIC DRAM cache with the measurement distribution.
	for i := 0; i < sc.Ops; i++ {
		s.Get(keys.KeyBytes(keys.NextKey())[:keySize])
	}

	// Pure GET pass, pipelined through the reservation station so hot-key
	// operations merge by data forwarding as in the hardware (the paper
	// credits merging with part of the long-tail gain).
	s.ResetCounters()
	for i := 0; i < sc.Ops; i++ {
		s.SubmitGet(keys.KeyBytes(keys.NextKey())[:keySize], func(_ []byte, ok bool, _ error) {
			if !ok {
				panic("ycsb: fill key missing")
			}
		})
	}
	s.Flush()
	st := s.Stats()
	pt.getAccesses = float64(st.Mem.Accesses()) / float64(sc.Ops)
	pt.dramPerGet = float64(st.Cache.DRAMLineReads+st.Cache.DRAMLineWrites) / float64(sc.Ops)
	totalLines := st.Mem.Lines()
	totalDMAs := st.Mem.Accesses()

	// Pure PUT pass (updates, YCSB-style), also pipelined.
	s.ResetCounters()
	for i := 0; i < sc.Ops; i++ {
		id := keys.NextKey()
		s.SubmitPut(keys.KeyBytes(id)[:keySize], keys.ValueBytes(id, uint64(i)), func(_ []byte, _ bool, err error) {
			if err != nil {
				panic(err)
			}
		})
	}
	s.Flush()
	st = s.Stats()
	pt.putAccesses = float64(st.Mem.Accesses()) / float64(sc.Ops)
	pt.dramPerPut = float64(st.Cache.DRAMLineReads+st.Cache.DRAMLineWrites) / float64(sc.Ops)
	totalLines += st.Mem.Lines()
	totalDMAs += st.Mem.Accesses()

	if totalDMAs > 0 {
		pt.avgDMABytes = float64(totalLines) * 64 / float64(totalDMAs)
	} else {
		pt.avgDMABytes = 64
	}
	return pt
}

// throughput converts a measured point plus a GET ratio into the
// bottleneck-model rate (paper §5.2.2: clock, network, or PCIe/DRAM).
func (pt ycsbPoint) throughput(getRatio float64) float64 {
	pcieCfg := pcie.DefaultConfig()
	pciePerOp := getRatio*pt.getAccesses + (1-getRatio)*pt.putAccesses
	dramPerOp := getRatio*pt.dramPerGet + (1-getRatio)*pt.dramPerPut
	pcieCap := float64(model.PCIeEndpoints) * pcieCfg.ReadOpsPerSec(int(pt.avgDMABytes))
	dramCap := model.NICDRAMBytesPerSec / 64

	net := netmodel.DefaultConfig()
	opWire := wireBytesPerOp(pt.kvSize)
	netOps := net.OpsPerSecond(opWire, opWire, net.BatchFor(opWire))

	rate := model.PeakOpsPerSec
	if netOps < rate {
		rate = netOps
	}
	if pciePerOp > 0 && pcieCap/pciePerOp < rate {
		rate = pcieCap / pciePerOp
	}
	if dramPerOp > 0 && dramCap/dramPerOp < rate {
		rate = dramCap / dramPerOp
	}
	return rate
}

// Fig16 reproduces Figure 16, "Throughput of KV-Direct under YCSB
// workload", uniform and long-tail, across KV sizes and GET/PUT mixes.
func Fig16(sc Scale) []*Table {
	kvSizes := []int{5, 10, 15, 60, 124, 252}
	mixes := []struct {
		name string
		get  float64
	}{
		{"100% GET", 1.0}, {"5% PUT", 0.95}, {"50% PUT", 0.5}, {"100% PUT", 0.0},
	}
	var tables []*Table
	for _, longtail := range []bool{false, true} {
		name, id := "uniform", "fig16a"
		if longtail {
			name, id = "long-tail", "fig16b"
		}
		t := &Table{
			ID:      id,
			Title:   fmt.Sprintf("YCSB throughput, %s workload (Mops)", name),
			Columns: []string{"KV size(B)", mixes[0].name, mixes[1].name, mixes[2].name, mixes[3].name, "bottleneck"},
			Notes:   "tiny KVs reach the 180 Mops clock bound under long-tail GETs; 62 B+ KVs are network-bound (paper Figure 16)",
		}
		for _, kv := range kvSizes {
			pt := measureYCSB(sc, kv, longtail)
			row := []string{itoa(kv)}
			for _, m := range mixes {
				row = append(row, mops(pt.throughput(m.get)))
			}
			row = append(row, bottleneckName(pt))
			t.Add(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

func bottleneckName(pt ycsbPoint) string {
	full := pt.throughput(1.0)
	net := netmodel.DefaultConfig()
	opWire := wireBytesPerOp(pt.kvSize)
	netOps := net.OpsPerSecond(opWire, opWire, net.BatchFor(opWire))
	switch {
	case full >= model.PeakOpsPerSec*0.999:
		return "clock"
	case full >= netOps*0.999:
		return "network"
	default:
		return "pcie/dram"
	}
}

// Fig17 reproduces Figure 17, "Latency of KV-Direct under peak
// throughput": per-operation latency percentiles with and without
// network batching, sampled from the component latency models plus the
// measured access counts.
func Fig17(sc Scale) []*Table {
	var tables []*Table
	for _, batched := range []bool{true, false} {
		id, title := "fig17a", "Latency with batching (us)"
		if !batched {
			id, title = "fig17b", "Latency without batching (us)"
		}
		t := &Table{
			ID:      id,
			Title:   title,
			Columns: []string{"KV size(B)", "GET uni P50", "GET uni P95", "GET skew P95", "PUT uni P95", "PUT skew P95"},
			Notes:   "PUT > GET (extra access); skewed < uniform (NIC DRAM hits); batching adds < 1 us (paper Figure 17)",
		}
		for _, kv := range []int{10, 60, 252} {
			uni := measureYCSB(sc, kv, false)
			skew := measureYCSB(sc, kv, true)
			g50, g95 := latencyPercentiles(sc, uni, true, batched, 50, 95)
			_, gs95 := latencyPercentiles(sc, skew, true, batched, 50, 95)
			_, p95 := latencyPercentiles(sc, uni, false, batched, 50, 95)
			_, ps95 := latencyPercentiles(sc, skew, false, batched, 50, 95)
			t.Add(itoa(kv), f2(g50/1000), f2(g95/1000), f2(gs95/1000), f2(p95/1000), f2(ps95/1000))
		}
		tables = append(tables, t)
	}
	return tables
}

// latencyPercentiles samples end-to-end operation latencies: network
// (with or without batching) + NIC processing + one sampled memory
// round trip per DMA, where cache-served accesses cost NIC DRAM latency
// instead of PCIe.
func latencyPercentiles(sc Scale, pt ycsbPoint, get, batched bool, p1, p2 float64) (float64, float64) {
	const dramLatencyNs = 200
	net := netmodel.DefaultConfig()
	pcieCfg := pcie.DefaultConfig()
	rng := sim.NewRNG(sc.Seed + int64(pt.kvSize))
	sample := stats.NewSample(sc.Ops / 2)

	accesses := pt.putAccesses
	dramPer := pt.dramPerPut
	if get {
		accesses = pt.getAccesses
		dramPer = pt.dramPerGet
	}
	// Probability an access is served by NIC DRAM rather than PCIe.
	dramFrac := 0.0
	if accesses+dramPer > 0 {
		dramFrac = dramPer / (accesses + dramPer)
	}
	opWire := wireBytesPerOp(pt.kvSize)
	batchBytes := opWire
	if batched {
		batchBytes = opWire * net.BatchFor(opWire)
	}
	netNs := net.LatencyNs(batchBytes, batched)

	total := int(accesses + dramPer + 0.999)
	if total < 1 {
		total = 1
	}
	for i := 0; i < sc.Ops/2; i++ {
		l := netNs + model.NICProcessingNs
		for a := 0; a < total; a++ {
			if rng.Float64() < dramFrac {
				l += dramLatencyNs
			} else {
				l += pcieCfg.SampleReadLatencyNs(rng)
			}
		}
		sample.Add(l)
	}
	return sample.Percentile(p1), sample.Percentile(p2)
}
