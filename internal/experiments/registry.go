package experiments

import "sort"

// Experiment is one regenerable table/figure group.
type Experiment struct {
	Name string // kvdbench subcommand, e.g. "fig11"
	Desc string
	Run  func(Scale) []*Table
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "PCIe random DMA throughput and latency", Fig3},
		{"fig6", "inline threshold vs memory accesses", Fig6},
		{"fig9", "hash index ratio / utilization vs accesses", Fig9},
		{"fig10", "max utilization vs hash index ratio", Fig10},
		{"fig11", "hash table designs: accesses per op", Fig11},
		{"fig12", "slab merging: bitmap vs multi-core radix sort", Fig12},
		{"fig13", "out-of-order engine effectiveness", Fig13},
		{"fig14", "DRAM load dispatcher throughput", Fig14},
		{"fig15", "network batching efficiency", Fig15},
		{"fig16", "YCSB system throughput", Fig16},
		{"fig17", "latency under peak throughput", Fig17},
		{"table2", "vector operation throughput", Table2},
		{"table3", "comparison with state-of-the-art systems", Table3},
		{"table4", "impact on host CPU workloads", Table4},
		{"scaling", "multi-NIC scaling to 1.22 GOps", Scaling},
		{"ablation", "design-choice ablations (beyond the paper)", Ablations},
		{"syssim", "integrated event-simulation cross-check (beyond the paper)", SysSim},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns all experiment names, sorted.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}
