package experiments

import (
	"math/rand"

	"kvdirect/internal/baseline"
	"kvdirect/internal/ooo"
	"kvdirect/internal/workload"
)

// Fig13 reproduces Figure 13, "Effectiveness of out-of-order execution
// engine": (a) atomics throughput vs number of keys, with and without
// OoO, against one- and two-sided RDMA baselines; (b) long-tail workload
// throughput vs PUT ratio.
func Fig13(sc Scale) []*Table {
	a := &Table{
		ID:    "fig13a",
		Title: "Atomics throughput vs number of keys (Mops)",
		Columns: []string{"keys", "KV-Direct OoO", "KV-Direct no-OoO",
			"one-sided RDMA", "two-sided RDMA"},
		Notes: "single-key: 180 vs 0.95 Mops (191x, paper §5.1.3); RDMA atomics 2.24 Mops [Kalia et al.]",
	}
	for _, keys := range []int{1, 2, 4, 16, 64, 256, 1024} {
		ops := atomicStream(sc.SimOps, keys, sc.Seed)
		withOoO := ooo.DefaultSimConfig(true).Simulate(ops)
		without := ooo.DefaultSimConfig(false).Simulate(ops)
		a.Add(itoa(keys),
			mops(withOoO.OpsPerSec), mops(without.OpsPerSec),
			mops(baseline.OneSidedRDMAAtomicsOps(keys)),
			mops(baseline.TwoSidedRDMAAtomicsOps(keys, 16)))
	}

	b := &Table{
		ID:      "fig13b",
		Title:   "Long-tail workload throughput vs PUT ratio (Mops)",
		Columns: []string{"PUT %", "with OoO", "without OoO"},
		Notes:   "Zipf keys; without OoO the pipeline stalls whenever a PUT finds an in-flight op on its key",
	}
	for _, putPct := range []int{0, 10, 30, 50, 70, 90, 100} {
		ops := zipfStream(sc.SimOps, float64(putPct)/100, sc.Seed)
		withOoO := ooo.DefaultSimConfig(true).Simulate(ops)
		without := ooo.DefaultSimConfig(false).Simulate(ops)
		b.Add(itoa(putPct), mops(withOoO.OpsPerSec), mops(without.OpsPerSec))
	}
	return []*Table{a, b}
}

func atomicStream(n, keys int, seed int64) []ooo.SimOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]ooo.SimOp, n)
	for i := range ops {
		ops[i] = ooo.SimOp{Key: uint64(rng.Intn(keys)), Write: true}
	}
	return ops
}

func zipfStream(n int, putRatio float64, seed int64) []ooo.SimOp {
	rng := rand.New(rand.NewSource(seed))
	gen := workload.New(workload.Config{
		Keys: 1 << 20, Skew: 0.99, Seed: seed, // the paper's long-tail skewness
	})
	ops := make([]ooo.SimOp, n)
	for i := range ops {
		ops[i] = ooo.SimOp{Key: gen.NextKey(), Write: rng.Float64() < putRatio}
	}
	return ops
}
