package experiments

import (
	"kvdirect/internal/pcie"
	"kvdirect/internal/sim"
)

// Fig3 reproduces Figure 3, "PCIe random DMA performance": (a) throughput
// vs request payload size for DMA reads and writes, from both the
// analytic model and the event-driven DMA engine simulation; (b) the DMA
// read latency CDF.
func Fig3(sc Scale) []*Table {
	cfg := pcie.DefaultConfig()
	rng := sim.NewRNG(sc.Seed)

	tput := &Table{
		ID:      "fig3a",
		Title:   "PCIe random DMA throughput vs payload size (per Gen3 x8 endpoint)",
		Columns: []string{"payload(B)", "read Mops (model)", "read Mops (sim)", "write Mops (model)", "write Mops (sim)"},
		Notes:   "64 tags bound reads to ~60 Mops at 64 B; posted writes track the bandwidth curve (paper §2.4)",
	}
	n := sc.SimOps / 10
	if n < 2000 {
		n = 2000
	}
	for _, payload := range []int{16, 32, 64, 128, 256, 512} {
		rd := cfg.SimulateRandomAccess(n, 256, payload, false, rng.Split(int64(payload)))
		wr := cfg.SimulateRandomAccess(n, 256, payload, true, rng.Split(int64(payload)+1000))
		tput.Add(itoa(payload),
			mops(cfg.ReadOpsPerSec(payload)), mops(rd.OpsPerSec),
			mops(cfg.WriteOpsPerSec(payload)), mops(wr.OpsPerSec))
	}

	lat := &Table{
		ID:      "fig3b",
		Title:   "PCIe random DMA read latency CDF (64 B payloads)",
		Columns: []string{"percentile", "latency(ns)"},
		Notes:   "cached base 800 ns + DRAM access/refresh/reordering tail (paper: ~1050 ns average)",
	}
	res := cfg.SimulateRandomAccess(sc.SimOps/5, 64, 64, false, rng.Split(42))
	for _, p := range []float64{5, 25, 50, 75, 90, 95, 99} {
		lat.Add(f1(p), f1(res.Latency.Percentile(p)))
	}
	return []*Table{tput, lat}
}
