package experiments

import (
	"math/rand"

	"kvdirect/internal/syssim"
	"kvdirect/internal/workload"
)

// SysSim cross-validates the bottleneck arithmetic behind Figure 16 with
// the integrated event-driven simulator: the same measured per-op
// resource loads are fed to both, and the simulator additionally composes
// every latency and concurrency limit (network, decoder, reservation
// station, PCIe tags, DRAM banks) to produce end-to-end latency.
func SysSim(sc Scale) []*Table {
	t := &Table{
		ID:    "syssim",
		Title: "Analytic model vs integrated event simulation",
		Columns: []string{"configuration", "analytic Mops", "simulated Mops",
			"sim P50 us", "sim P95 us", "PCIe util", "forwarded"},
		Notes: "same measured DMA loads drive both; agreement validates the Figure 16/17 arithmetic",
	}
	type cfg struct {
		name     string
		kv       int
		longtail bool
		getRatio float64
	}
	for _, c := range []cfg{
		{"10B uniform 100% GET", 10, false, 1.0},
		{"10B long-tail 100% GET", 10, true, 1.0},
		{"10B long-tail 50% PUT", 10, true, 0.5},
		{"60B uniform 100% GET", 60, false, 1.0},
	} {
		pt := measureYCSB(sc, c.kv, c.longtail)
		analytic := pt.throughput(c.getRatio)

		// Convert the measured split into the simulator's parameters:
		// total accesses per op and the fraction served by NIC DRAM.
		shareGet := share(pt.dramPerGet, pt.getAccesses)
		sharePut := share(pt.dramPerPut, pt.putAccesses)
		mix := c.getRatio*shareGet + (1-c.getRatio)*sharePut
		simCfg := syssim.Config{
			GetDMAs:     total(pt.getAccesses, shareGet),
			PutDMAs:     total(pt.putAccesses, sharePut),
			DRAMShare:   mix,
			Clients:     32,
			BatchOps:    40,
			OpWireBytes: wireBytesPerOp(c.kv),
			Seed:        sc.Seed,
		}
		stream := simStream(c, sc.Seed)
		n := sc.SimOps
		if n > 150000 {
			n = 150000
		}
		res := syssim.Run(simCfg, n, stream)
		t.Add(c.name, mops(analytic), mops(res.OpsPerSec),
			f2(res.Latency.Percentile(50)/1000), f2(res.Latency.Percentile(95)/1000),
			f2(res.PCIeUtil), itoa(int(res.Forwarded)))
	}
	return []*Table{t}
}

// share converts (DRAM line ops, PCIe DMAs) per op into the fraction of
// logical accesses served by DRAM. DRAM fills accompany PCIe misses, so
// roughly half the DRAM line traffic is hit service.
func share(dram, pcieDMAs float64) float64 {
	served := dram - pcieDMAs // fills ≈ misses ≈ PCIe reads into cacheable space
	if served < 0 {
		served = dram / 2
	}
	tot := served + pcieDMAs
	if tot <= 0 {
		return 0
	}
	s := served / tot
	if s > 0.9 {
		s = 0.9
	}
	return s
}

// total converts PCIe DMAs per op plus a DRAM share into total logical
// accesses per op.
func total(pcieDMAs, share float64) float64 {
	if share >= 1 {
		return pcieDMAs
	}
	t := pcieDMAs / (1 - share)
	if t < 1 {
		t = 1
	}
	return t
}

func simStream(c struct {
	name     string
	kv       int
	longtail bool
	getRatio float64
}, seed int64) func() syssim.Op {
	rng := rand.New(rand.NewSource(seed + 99))
	if c.longtail {
		gen := workload.New(workload.Config{Keys: 1 << 20, Skew: 0.99, Seed: seed + 100})
		return func() syssim.Op {
			return syssim.Op{Key: gen.NextKey(), Put: rng.Float64() >= c.getRatio}
		}
	}
	return func() syssim.Op {
		return syssim.Op{Key: uint64(rng.Int63n(1 << 20)), Put: rng.Float64() >= c.getRatio}
	}
}
