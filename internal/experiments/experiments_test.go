package experiments

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell; unreachable cells ("—") return ok=false.
func cell(t *Table, row, col int) (float64, bool) {
	s := t.Rows[row][col]
	if s == "—" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func mustCell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, ok := cell(tbl, row, col)
	if !ok {
		t.Fatalf("%s row %d col %d not numeric: %q", tbl.ID, row, col, tbl.Rows[row][col])
	}
	return v
}

func find(t *testing.T, tables []*Table, id string) *Table {
	t.Helper()
	for _, tbl := range tables {
		if tbl.ID == id {
			return tbl
		}
	}
	t.Fatalf("table %q not produced", id)
	return nil
}

func TestTableString(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}, Notes: "n"}
	tbl.Add("1", "2")
	s := tbl.String()
	for _, want := range []string{"=== x: T ===", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in rendered table:\n%s", want, s)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig6", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "table2", "table3", "table4",
		"scaling", "ablation"}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if len(Names()) != len(All()) {
		t.Error("Names/All length mismatch")
	}
}

func TestFig3Claims(t *testing.T) {
	tabs := Fig3(Quick())
	a := find(t, tabs, "fig3a")
	// 64 B row: read ~60 Mops (model), write ~87.
	for ri := range a.Rows {
		if a.Rows[ri][0] != "64" {
			continue
		}
		read := mustCell(t, a, ri, 1)
		write := mustCell(t, a, ri, 3)
		if read < 55 || read > 65 {
			t.Errorf("64 B read = %.1f Mops, want ~60", read)
		}
		if write < 80 || write > 92 {
			t.Errorf("64 B write = %.1f Mops, want ~87", write)
		}
	}
	b := find(t, tabs, "fig3b")
	med := mustCell(t, b, 2, 1) // P50
	if med < 900 || med > 1200 {
		t.Errorf("median DMA latency = %.0f ns, want ~1000", med)
	}
}

func TestFig6AccessesGrowWithUtilization(t *testing.T) {
	tabs := Fig6(Quick())
	tbl := tabs[0]
	for col := 1; col <= 4; col++ {
		prev := 0.0
		for row := range tbl.Rows {
			v, ok := cell(tbl, row, col)
			if !ok {
				continue
			}
			if v < prev-0.15 {
				t.Errorf("fig6 col %d: accesses fell from %.2f to %.2f", col, prev, v)
			}
			prev = v
		}
	}
}

func TestFig9InlineBeatsOfflineAtHighRatio(t *testing.T) {
	tabs := Fig9(Quick())
	a := find(t, tabs, "fig9a")
	// At the highest ratio with both measurable, inline < offline.
	for row := len(a.Rows) - 1; row >= 0; row-- {
		in, ok1 := cell(a, row, 1)
		off, ok2 := cell(a, row, 2)
		if ok1 && ok2 {
			if in >= off {
				t.Errorf("ratio %s: inline %.2f >= offline %.2f", a.Rows[row][0], in, off)
			}
			return
		}
	}
	t.Skip("no row with both cells measurable")
}

func TestFig10MaxUtilizationDecreasesWithRatio(t *testing.T) {
	tbl := Fig10(Quick())[0]
	prev := 2.0
	for row := range tbl.Rows {
		v := mustCell(t, tbl, row, 1)
		if v > prev+0.01 {
			t.Errorf("max utilization rose at ratio %s: %.3f > %.3f",
				tbl.Rows[row][0], v, prev)
		}
		prev = v
	}
	// Accesses at max fall as ratio rises (fewer chained lookups).
	first := mustCell(t, tbl, 0, 2)
	last := mustCell(t, tbl, len(tbl.Rows)-1, 2)
	if last >= first {
		t.Errorf("accesses@max should fall with ratio: %.2f -> %.2f", first, last)
	}
}

func TestFig11Claims(t *testing.T) {
	tabs := Fig11(Quick())
	get10 := find(t, tabs, "fig11-10b-GET")
	put10 := find(t, tabs, "fig11-10b-PUT")

	// KV-Direct: close to 1 access per GET and 2 per PUT at low
	// utilization for inline KVs.
	if v := mustCell(t, get10, 0, 1); v > 1.2 {
		t.Errorf("KVD 10B GET at low util = %.2f, want ~1", v)
	}
	if v := mustCell(t, put10, 0, 1); v > 2.3 {
		t.Errorf("KVD 10B PUT at low util = %.2f, want ~2", v)
	}
	// KV-Direct beats both baselines on GET for inline KVs.
	kvd := mustCell(t, get10, 1, 1)
	ck, okC := cell(get10, 1, 2)
	hs, okH := cell(get10, 1, 3)
	if okC && kvd >= ck {
		t.Errorf("KVD GET %.2f should beat cuckoo %.2f", kvd, ck)
	}
	if okH && kvd >= hs {
		t.Errorf("KVD GET %.2f should beat hopscotch %.2f", kvd, hs)
	}
	// Rightmost utilizations only reachable by KV-Direct (small KVs).
	lastRow := len(get10.Rows) - 1
	if _, ok := cell(get10, lastRow, 1); !ok {
		t.Error("KVD should reach the highest 10B utilization")
	}
	if _, ok := cell(get10, lastRow, 2); ok {
		t.Error("cuckoo should NOT reach the highest 10B utilization")
	}
	if _, ok := cell(get10, lastRow, 3); ok {
		t.Error("hopscotch should NOT reach the highest 10B utilization")
	}
	// 252 B: hopscotch GET is competitive (its strength), KVD PUT beats
	// both baselines.
	put252 := find(t, tabs, "fig11-252b-PUT")
	last := len(put252.Rows) - 1
	kvdPut := mustCell(t, put252, last, 1)
	ckPut, _ := cell(put252, last, 2)
	hsPut, _ := cell(put252, last, 3)
	if kvdPut >= ckPut || kvdPut >= hsPut {
		t.Errorf("KVD 252B PUT %.2f should beat cuckoo %.2f and hopscotch %.2f",
			kvdPut, ckPut, hsPut)
	}
}

func TestFig12BothAlgorithmsAgree(t *testing.T) {
	tbl := Fig12(Quick())[0]
	merged := tbl.Rows[0][3]
	for _, row := range tbl.Rows[1:] {
		if row[3] != merged {
			t.Errorf("radix (%s pairs) and bitmap (%s pairs) disagree", row[3], merged)
		}
	}
}

func TestFig13Claims(t *testing.T) {
	tabs := Fig13(Quick())
	a := find(t, tabs, "fig13a")
	// Single-key row: OoO ~180, no-OoO ~1, improvement >100x.
	oooV := mustCell(t, a, 0, 1)
	stall := mustCell(t, a, 0, 2)
	if oooV < 170 {
		t.Errorf("single-key OoO = %.1f Mops, want ~180", oooV)
	}
	if stall > 1.2 {
		t.Errorf("single-key stall = %.1f Mops, want ~1", stall)
	}
	if oooV/stall < 100 {
		t.Errorf("OoO improvement = %.0fx, want >100x (paper: 191x)", oooV/stall)
	}
	// KV-Direct atomics outperform the RDMA baselines at every key count.
	for row := range a.Rows {
		if mustCell(t, a, row, 1) < mustCell(t, a, row, 3) {
			t.Errorf("row %d: OoO below one-sided RDMA", row)
		}
	}

	b := find(t, tabs, "fig13b")
	// OoO stays near clock for all PUT ratios; stall collapses.
	for row := range b.Rows {
		if v := mustCell(t, b, row, 1); v < 170 {
			t.Errorf("OoO long-tail at %s%% PUT = %.1f Mops", b.Rows[row][0], v)
		}
	}
	stall0 := mustCell(t, b, 0, 2)
	stall100 := mustCell(t, b, len(b.Rows)-1, 2)
	if stall100 >= stall0 {
		t.Error("stall throughput should fall with PUT ratio")
	}
}

func TestFig14Claims(t *testing.T) {
	tbl := Fig14(Quick())[0]
	for row := range tbl.Rows {
		base := mustCell(t, tbl, row, 1)
		uniform := mustCell(t, tbl, row, 2)
		longtail := mustCell(t, tbl, row, 3)
		if longtail <= base {
			t.Errorf("row %d: long-tail dispatch %.1f <= baseline %.1f", row, longtail, base)
		}
		if longtail < uniform {
			t.Errorf("row %d: long-tail %.1f < uniform %.1f", row, longtail, uniform)
		}
	}
	// Read-intensive long-tail reaches the clock bound.
	if v := mustCell(t, tbl, 2, 3); v < 175 {
		t.Errorf("100%% GET long-tail = %.1f Mops, want 180", v)
	}
}

func TestFig15BatchingGains(t *testing.T) {
	tabs := Fig15(Quick())
	a := find(t, tabs, "fig15a")
	for row := range a.Rows {
		if gain := mustCell(t, a, row, 3); gain < 1.0 {
			t.Errorf("batching gain < 1 at %s B", a.Rows[row][0])
		}
	}
	// Small KVs gain the most.
	if mustCell(t, a, 0, 3) <= mustCell(t, a, len(a.Rows)-1, 3) {
		t.Error("batching gain should shrink with KV size")
	}
	b := find(t, tabs, "fig15b")
	for row := range b.Rows {
		if lat := mustCell(t, b, row, 2); lat > 3.5 {
			t.Errorf("batched latency %.2f us > 3.5 at %s B", lat, b.Rows[row][0])
		}
	}
}

func TestFig16Claims(t *testing.T) {
	tabs := Fig16(Quick())
	uni := find(t, tabs, "fig16a")
	lt := find(t, tabs, "fig16b")
	for row := range uni.Rows {
		// Long-tail >= uniform for every size and mix.
		for col := 1; col <= 4; col++ {
			u := mustCell(t, uni, row, col)
			l := mustCell(t, lt, row, col)
			if l < u-0.5 {
				t.Errorf("row %d col %d: long-tail %.1f < uniform %.1f", row, col, l, u)
			}
		}
		// GET-heavy >= PUT-heavy.
		if mustCell(t, uni, row, 1) < mustCell(t, uni, row, 4)-0.5 {
			t.Errorf("row %d: 100%% GET below 100%% PUT", row)
		}
	}
	// Long-tail tiny-KV GETs approach the clock bound; big KVs are
	// network-bound and much slower.
	small := mustCell(t, lt, 0, 1)
	big := mustCell(t, lt, len(lt.Rows)-1, 1)
	if small < 120 {
		t.Errorf("long-tail 5B GET = %.1f Mops, want >= 120", small)
	}
	if big > 40 {
		t.Errorf("252B GET = %.1f Mops, should be network-bound (< 40)", big)
	}
}

func TestFig17Claims(t *testing.T) {
	tabs := Fig17(Quick())
	batched := find(t, tabs, "fig17a")
	plain := find(t, tabs, "fig17b")
	for row := range plain.Rows {
		// Tail latency in the paper's 3-9 us ballpark (allow up to 12).
		for col := 1; col <= 5; col++ {
			v := mustCell(t, plain, row, col)
			if v < 2 || v > 12 {
				t.Errorf("non-batched latency %.2f us out of range", v)
			}
		}
		// Batching adds < 1 us.
		extra := mustCell(t, batched, row, 2) - mustCell(t, plain, row, 2)
		if extra > 1.0 {
			t.Errorf("batching adds %.2f us at %s B, want < 1", extra, plain.Rows[row][0])
		}
		// Skewed GETs no slower than uniform.
		if mustCell(t, plain, row, 3) > mustCell(t, plain, row, 2)+0.3 {
			t.Errorf("row %d: skewed GET slower than uniform", row)
		}
		// PUT slower than GET.
		if mustCell(t, plain, row, 4) < mustCell(t, plain, row, 2) {
			t.Errorf("row %d: PUT faster than GET", row)
		}
	}
}

func TestTable2VectorUpdateWins(t *testing.T) {
	tbl := Table2(Quick())[0]
	for row := range tbl.Rows {
		noRet := mustCell(t, tbl, row, 2)
		oneKey := mustCell(t, tbl, row, 3)
		fetch := mustCell(t, tbl, row, 4)
		if noRet < oneKey || noRet < fetch {
			t.Errorf("row %d: vector update (%.2f) should beat alternatives (%.2f, %.2f)",
				row, noRet, oneKey, fetch)
		}
	}
}

func TestTable3KVDirectLeadsEfficiency(t *testing.T) {
	tbl := Table3(Quick())[0]
	var kvdEff float64
	bestOther := 0.0
	for _, row := range tbl.Rows {
		eff, _ := strconv.ParseFloat(strings.Fields(row[3])[0], 64)
		if strings.HasPrefix(row[0], "KV-Direct (1 NIC)") {
			kvdEff = eff
		} else if !strings.HasPrefix(row[0], "KV-Direct") && eff > bestOther {
			bestOther = eff
		}
	}
	if kvdEff < 3*bestOther {
		t.Errorf("KV-Direct efficiency %.0f should be >= 3x best other %.0f (paper: 3x)",
			kvdEff, bestOther)
	}
}

func TestTable4MinimalImpact(t *testing.T) {
	tbl := Table4(Quick())[0]
	for _, row := range tbl.Rows {
		deg := strings.Trim(row[3], "+-%")
		v, err := strconv.ParseFloat(deg, 64)
		if err != nil {
			t.Fatalf("bad degradation cell %q", row[3])
		}
		if v > 15 {
			t.Errorf("%s degraded %.1f%%, paper reports minimal impact", row[0], v)
		}
	}
}

func TestScalingReaches1220Mops(t *testing.T) {
	tbl := Scaling(Quick())[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "10" {
		t.Fatalf("last row is %s NICs", last[0])
	}
	v, _ := strconv.ParseFloat(last[1], 64)
	if v < 1.1 || v > 1.3 {
		t.Errorf("10-NIC throughput = %.2f Gops, want ~1.22", v)
	}
	eff, _ := strconv.ParseFloat(last[2], 64)
	if eff < 0.95 {
		t.Errorf("10-NIC scaling efficiency = %.2f, want near-linear", eff)
	}
}

func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range All() {
		tabs := e.Run(Quick())
		if len(tabs) == 0 {
			t.Errorf("%s produced no tables", e.Name)
		}
		for _, tbl := range tabs {
			if len(tbl.Rows) == 0 {
				t.Errorf("%s/%s has no rows", e.Name, tbl.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("%s/%s row width %d != %d columns",
						e.Name, tbl.ID, len(row), len(tbl.Columns))
				}
			}
		}
	}
}

func TestAblationFullDesignWins(t *testing.T) {
	tbl := Ablations(Quick())[0]
	if tbl.Rows[0][0] != "full design" {
		t.Fatal("first row should be the full design")
	}
	full := mustCell(t, tbl, 0, 4)
	for row := 1; row < len(tbl.Rows); row++ {
		if v := mustCell(t, tbl, row, 4); v >= full {
			t.Errorf("%s (%.1f Mops) should be below the full design (%.1f)",
				tbl.Rows[row][0], v, full)
		}
	}
	// The dispatch ablation must show zero NIC DRAM traffic.
	for row := range tbl.Rows {
		if tbl.Rows[row][0] == "no DRAM load dispatch" {
			if v := mustCell(t, tbl, row, 2); v != 0 {
				t.Errorf("no-dispatch row has DRAM traffic %.2f", v)
			}
		}
		if tbl.Rows[row][0] == "no out-of-order execution" {
			if v := mustCell(t, tbl, row, 3); v != 0 {
				t.Errorf("no-OoO row has merge ratio %.2f", v)
			}
		}
	}
}

func TestSysSimAgreesWithAnalyticModel(t *testing.T) {
	tbl := SysSim(Quick())[0]
	for row := range tbl.Rows {
		name := tbl.Rows[row][0]
		analytic := mustCell(t, tbl, row, 1)
		simulated := mustCell(t, tbl, row, 2)
		ratio := simulated / analytic
		// Uniform rows agree tightly (no forwarding ambiguity); long-tail
		// rows may diverge upward because the simulator merges hot keys
		// beyond what the measured averages capture.
		lo, hi := 0.85, 1.2
		if strings.Contains(name, "long-tail") {
			lo, hi = 0.85, 1.6
		}
		if ratio < lo || ratio > hi {
			t.Errorf("%s: sim/analytic = %.2f (%.1f vs %.1f Mops), want [%.2f,%.2f]",
				name, ratio, simulated, analytic, lo, hi)
		}
		// Peak-load latency in single-digit-to-low-teens microseconds.
		p95 := mustCell(t, tbl, row, 4)
		if p95 < 2 || p95 > 25 {
			t.Errorf("%s: P95 = %.1f us implausible", name, p95)
		}
	}
}

func TestDesignDocIndexMatchesRegistry(t *testing.T) {
	// Every `kvdbench <name>` mention in DESIGN.md must be a registered
	// experiment, and every registered experiment must be mentioned —
	// a guard against doc drift.
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Skipf("DESIGN.md not readable: %v", err)
	}
	doc := string(data)
	re := regexp.MustCompile("`kvdbench ([a-z0-9]+)`")
	mentioned := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(doc, -1) {
		mentioned[m[1]] = true
	}
	for _, e := range All() {
		if e.Name == "syssim" && !mentioned[e.Name] {
			// syssim appears in the index table; tolerate either form.
			if !strings.Contains(doc, "kvdbench syssim") && !strings.Contains(doc, "syssim") {
				t.Errorf("experiment %q not mentioned in DESIGN.md", e.Name)
			}
			continue
		}
		if !mentioned[e.Name] && !strings.Contains(doc, e.Name) {
			t.Errorf("experiment %q not mentioned in DESIGN.md", e.Name)
		}
	}
	for name := range mentioned {
		if _, ok := Lookup(name); !ok {
			t.Errorf("DESIGN.md mentions unknown experiment %q", name)
		}
	}
}

func TestKeyClaimsRobustAcrossSeeds(t *testing.T) {
	// The headline claims must not be artifacts of the default seed.
	for _, seed := range []int64{2, 7} {
		sc := Quick()
		sc.Seed = seed
		get10 := find(t, Fig11(sc), "fig11-10b-GET")
		if v := mustCell(t, get10, 0, 1); v > 1.25 {
			t.Errorf("seed %d: KVD 10B GET = %.2f, want ~1", seed, v)
		}
		a := find(t, Fig13(sc), "fig13a")
		oooV := mustCell(t, a, 0, 1)
		stall := mustCell(t, a, 0, 2)
		if oooV/stall < 100 {
			t.Errorf("seed %d: OoO improvement %.0fx", seed, oooV/stall)
		}
	}
}
