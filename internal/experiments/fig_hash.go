package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"kvdirect/internal/baseline"
	"kvdirect/internal/hashtable"
	"kvdirect/internal/memory"
	"kvdirect/internal/slab"
)

// harness drives a real KV-Direct hash table over counted memory for the
// access-count experiments.
type harness struct {
	tbl   *hashtable.Table
	mem   *memory.Memory
	alloc *slab.Allocator
	total uint64

	rng     *rand.Rand
	keySize int
	valSize func(id uint64) int // value size per key id

	nextID uint64
	live   []uint64
}

func newHarness(memBytes uint64, ratio float64, threshold int, seed int64,
	keySize int, valSize func(uint64) int) *harness {
	mem := memory.New(memBytes)
	idx, slabs := memory.Split(memBytes, ratio)
	alloc := slab.New(slabs, slab.Options{})
	tbl, err := hashtable.New(mem, alloc, hashtable.Config{
		Index: idx, InlineThreshold: threshold, Seed: uint64(seed),
	})
	if err != nil {
		panic(err)
	}
	return &harness{
		tbl: tbl, mem: mem, alloc: alloc, total: memBytes,
		rng: rand.New(rand.NewSource(seed)), keySize: keySize, valSize: valSize,
	}
}

func (h *harness) key(id uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], id+1) // ids stay well below 2^40
	k := make([]byte, h.keySize)
	copy(k, buf[:])
	return k
}

func (h *harness) val(id uint64) []byte {
	n := h.valSize(id)
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(id>>uint(8*(i%8))) ^ byte(i)
	}
	return v
}

// insertOne inserts the next fresh key; returns false when the table is
// full.
func (h *harness) insertOne() bool {
	id := h.nextID
	if err := h.tbl.Put(h.key(id), h.val(id)); err != nil {
		return false
	}
	h.nextID++
	h.live = append(h.live, id)
	return true
}

// fillTo inserts fresh keys until the utilization target (payload bytes /
// total memory) is reached; returns false if the table filled up first.
func (h *harness) fillTo(util float64) bool {
	for h.tbl.Utilization(h.total) < util {
		if !h.insertOne() {
			return false
		}
	}
	return true
}

// fillMax inserts until full and returns the maximum utilization reached.
func (h *harness) fillMax() float64 {
	for h.insertOne() {
	}
	return h.tbl.Utilization(h.total)
}

// measureGets returns average memory accesses per GET of random live keys.
func (h *harness) measureGets(n int) float64 {
	if len(h.live) == 0 {
		return 0
	}
	h.mem.ResetStats()
	for i := 0; i < n; i++ {
		id := h.live[h.rng.Intn(len(h.live))]
		if _, ok := h.tbl.Get(h.key(id)); !ok {
			panic("harness: live key missing")
		}
	}
	return float64(h.mem.Stats().Accesses()) / float64(n)
}

// measurePuts returns average accesses per PUT, using a delete+reinsert
// churn protocol so utilization stays constant and insertion cost (the
// expensive path for cuckoo/hopscotch) is what gets measured. Only the
// insert's accesses are charged.
func (h *harness) measurePuts(n int) float64 {
	if len(h.live) == 0 {
		return 0
	}
	var acc uint64
	measured := 0
	for i := 0; i < n; i++ {
		j := h.rng.Intn(len(h.live))
		victim := h.live[j]
		h.live[j] = h.live[len(h.live)-1]
		h.live = h.live[:len(h.live)-1]
		if !h.tbl.Delete(h.key(victim)) {
			panic("harness: delete of live key failed")
		}
		before := h.mem.Stats()
		if !h.insertOne() {
			continue
		}
		acc += h.mem.Stats().Sub(before).Accesses()
		measured++
	}
	if measured == 0 {
		return 0
	}
	return float64(acc) / float64(measured)
}

// chooseRatio picks a hash index ratio sized so the index and slab
// regions exhaust together for the given KV geometry (the paper tunes
// this before each benchmark).
func chooseRatio(kvSize, threshold int) float64 {
	if kvSize+2 <= threshold+2 && kvSize+2 <= hashtable.MaxInlineData {
		// Inline: almost everything lives in buckets; keep a slab sliver
		// for chained buckets.
		return 0.9
	}
	// Non-inline: index costs ~5.5 B per key (slot / occupancy), data
	// costs the slab class footprint.
	idx := 5.5
	cls, ok := slab.ClassFor(kvSize + 4)
	data := float64(slab.MaxSlab)
	if ok {
		data = float64(slab.Sizes[cls])
	}
	return idx / (idx + data)
}

// mixedVal is the Figure 6/9/10 value-size mix: values 0-25 B on 5 B keys
// give 5-30 B KVs, so inline thresholds actually divide the population.
func mixedVal(id uint64) int { return int(id % 26) }

// tuneRatio coarsely searches for the hash index ratio maximizing the
// achievable utilization for a configuration, mirroring the paper's
// "tune hash index ratio ... before each benchmark". The search runs on a
// small memory: the optimum is size-independent.
func tuneRatio(threshold int, seed int64, keySize int, valSize func(uint64) int) float64 {
	const tuneBytes = 4 << 20
	best, bestRatio := -1.0, 0.5
	for _, ratio := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		h := newHarness(tuneBytes, ratio, threshold, seed, keySize, valSize)
		if max := h.fillMax(); max > best {
			best, bestRatio = max, ratio
		}
	}
	return bestRatio
}

// Fig6 reproduces Figure 6: average memory access count under varying
// inline thresholds and memory utilizations, with KV sizes mixed 5-30 B
// so the threshold actually divides the population. Each threshold runs
// at its tuned hash index ratio.
func Fig6(sc Scale) []*Table {
	t := &Table{
		ID:      "fig6",
		Title:   "Memory accesses per GET vs utilization, by inline threshold",
		Columns: []string{"utilization", "thr=10B", "thr=15B", "thr=20B", "thr=25B"},
		Notes:   "mixed 5-30 B KVs, per-threshold tuned index ratio; higher thresholds inline more KVs (paper Figure 6)",
	}
	utils := []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
	thresholds := []int{10, 15, 20, 25}
	cells := make(map[[2]int]string)
	for ti, thr := range thresholds {
		ratio := tuneRatio(thr, sc.Seed+int64(ti), 5, mixedVal)
		h := newHarness(sc.MemBytes, ratio, thr, sc.Seed+int64(ti), 5, mixedVal)
		for ui, u := range utils {
			if !h.fillTo(u) {
				cells[[2]int{ui, ti}] = "—"
				continue
			}
			cells[[2]int{ui, ti}] = f2(h.measureGets(sc.Ops))
		}
	}
	for ui, u := range utils {
		row := []string{f2(u)}
		for ti := range thresholds {
			c := cells[[2]int{ui, ti}]
			if c == "" {
				c = "—"
			}
			row = append(row, c)
		}
		t.Add(row...)
	}
	return []*Table{t}
}

// Fig9 reproduces Figure 9: memory access count vs hash index ratio (a)
// and vs memory utilization (b), for inline and offline (never-inline)
// configurations.
func Fig9(sc Scale) []*Table {
	a := &Table{
		ID:      "fig9a",
		Title:   "Memory accesses per GET vs hash index ratio (utilization 0.25)",
		Columns: []string{"index ratio", "inline", "offline"},
		Notes:   "mixed 5-30 B KVs; more index space means more inlining and fewer collisions",
	}
	for _, ratio := range []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8} {
		row := []string{f2(ratio)}
		for _, thr := range []int{25, 0} {
			h := newHarness(sc.MemBytes, ratio, thr, sc.Seed, 5, mixedVal)
			if !h.fillTo(0.25) {
				row = append(row, "—")
				continue
			}
			row = append(row, f2(h.measureGets(sc.Ops)))
		}
		a.Add(row...)
	}

	b := &Table{
		ID:      "fig9b",
		Title:   "Memory accesses per GET vs utilization (hash index ratio 0.5)",
		Columns: []string{"utilization", "inline", "offline"},
	}
	for _, u := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30} {
		row := []string{f2(u)}
		for _, thr := range []int{25, 0} {
			h := newHarness(sc.MemBytes, 0.5, thr, sc.Seed, 5, mixedVal)
			if !h.fillTo(u) {
				row = append(row, "—")
				continue
			}
			row = append(row, f2(h.measureGets(sc.Ops)))
		}
		b.Add(row...)
	}
	return []*Table{a, b}
}

// Fig10 reproduces Figure 10: the maximum achievable memory utilization
// drops as the hash index ratio grows (less dynamic-allocation space), so
// the optimal ratio for a target utilization is the largest ratio that
// still reaches it; the dashed line is the access count at that point.
func Fig10(sc Scale) []*Table {
	t := &Table{
		ID:      "fig10",
		Title:   "Max achievable utilization and GET accesses vs hash index ratio (mixed 5-30 B KVs)",
		Columns: []string{"index ratio", "max utilization", "accesses@max"},
		Notes:   "max utilization drops as the index squeezes out dynamic-allocation space; pick the largest ratio that still reaches the required utilization (paper Figure 10)",
	}
	for _, ratio := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		h := newHarness(sc.MemBytes, ratio, 25, sc.Seed, 5, mixedVal)
		max := h.fillMax()
		t.Add(f2(ratio), f3(max), f2(h.measureGets(sc.Ops)))
	}
	return []*Table{t}
}

// Fig11 reproduces Figure 11: memory accesses per KV operation for
// KV-Direct (chaining + inline), MemC3 (bucketized cuckoo) and FaRM
// (chain-associative hopscotch), for 10 B and 254 B KVs, GET and PUT,
// across memory utilizations. "—" marks utilizations a design cannot
// reach (the paper's missing bars).
func Fig11(sc Scale) []*Table {
	var tables []*Table
	for _, kv := range []int{10, 252} {
		utils := []float64{0.10, 0.20, 0.30, 0.35}
		if kv > 50 {
			utils = []float64{0.25, 0.40, 0.55, 0.70}
		}
		for _, op := range []string{"GET", "PUT"} {
			t := &Table{
				ID:      fmt.Sprintf("fig11-%db-%s", kv, op),
				Title:   fmt.Sprintf("Memory accesses per %s, %d B KVs", op, kv),
				Columns: []string{"utilization", "KV-Direct", "MemC3(cuckoo)", "FaRM(hopscotch)"},
			}
			for _, u := range utils {
				row := []string{f2(u)}
				row = append(row, kvdCell(sc, kv, op, u))
				row = append(row, cuckooCell(sc, kv, op, u))
				row = append(row, hopscotchCell(sc, kv, op, u))
				t.Add(row...)
			}
			t.Notes = "values in slabs for MemC3/FaRM with inline keys; — marks unreachable utilizations (paper Figure 11)"
			tables = append(tables, t)
		}
	}
	return tables
}

// tuneRatioFor finds the largest hash index ratio (fewest collisions and
// most inlining) that still reaches the required utilization — the
// paper's "optimal choice of inline threshold and hash index ratio for
// the given KV size and memory utilization requirement".
func tuneRatioFor(util float64, threshold int, seed int64, keySize int, valSize func(uint64) int) (float64, bool) {
	const tuneBytes = 4 << 20
	for ratio := 0.9; ratio >= 0.09; ratio -= 0.1 {
		h := newHarness(tuneBytes, ratio, threshold, seed, keySize, valSize)
		if h.fillTo(util) {
			return ratio, true
		}
	}
	return 0, false
}

func kvdCell(sc Scale, kv int, op string, util float64) string {
	threshold := 13
	keySize := 5
	valSize := kv - keySize
	if kv > 50 {
		threshold = 0
		keySize = 10
		valSize = kv - keySize
	}
	ratio, reachable := tuneRatioFor(util, threshold, sc.Seed, keySize,
		func(uint64) int { return valSize })
	if !reachable {
		return "—"
	}
	h := newHarness(sc.MemBytes, ratio, threshold, sc.Seed, keySize,
		func(uint64) int { return valSize })
	if !h.fillTo(util) {
		return "—"
	}
	if op == "GET" {
		return f2(h.measureGets(sc.Ops))
	}
	return f2(h.measurePuts(sc.Ops))
}

func cuckooCell(sc Scale, kv int, op string, util float64) string {
	c := baseline.NewCuckoo(sc.MemBytes, kv, cuckooIndexRatio(kv), sc.Seed)
	next := uint64(1)
	for c.Utilization(sc.MemBytes) < util {
		if !c.Put(next) {
			return "—"
		}
		next++
	}
	rng := rand.New(rand.NewSource(sc.Seed + 7))
	if op == "GET" {
		c.GetStats = baseline.AccessStats{}
		for i := 0; i < sc.Ops; i++ {
			c.Get(uint64(rng.Intn(int(next-1))) + 1)
		}
		return f2(c.GetStats.PerOp())
	}
	c.PutStats = baseline.AccessStats{}
	for i := 0; i < sc.Ops; i++ {
		victim := uint64(rng.Intn(int(next-1))) + 1
		if c.Delete(victim) {
			c.Put(next)
			next++
		}
	}
	return f2(c.PutStats.PerOp())
}

func hopscotchCell(sc Scale, kv int, op string, util float64) string {
	h := baseline.NewHopscotch(sc.MemBytes, kv, cuckooIndexRatio(kv))
	next := uint64(1)
	for h.Utilization(sc.MemBytes) < util {
		if !h.Put(next) {
			return "—"
		}
		next++
	}
	rng := rand.New(rand.NewSource(sc.Seed + 8))
	if op == "GET" {
		h.GetStats = baseline.AccessStats{}
		for i := 0; i < sc.Ops; i++ {
			h.Get(uint64(rng.Intn(int(next-1))) + 1)
		}
		return f2(h.GetStats.PerOp())
	}
	h.PutStats = baseline.AccessStats{}
	for i := 0; i < sc.Ops; i++ {
		victim := uint64(rng.Intn(int(next-1))) + 1
		if h.Delete(victim) {
			h.Put(next)
			next++
		}
	}
	return f2(h.PutStats.PerOp())
}

// cuckooIndexRatio sizes the baseline index so index slots and slab
// objects exhaust together at full load.
func cuckooIndexRatio(kv int) float64 {
	slot := 8.0 / 0.95
	obj := float64((kv + 2 + 15) / 16 * 16)
	return slot / (slot + obj)
}
