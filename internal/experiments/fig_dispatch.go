package experiments

import (
	"math/rand"

	"kvdirect/internal/dispatch"
	"kvdirect/internal/memory"
	"kvdirect/internal/model"
	"kvdirect/internal/nicdram"
)

// Fig14 reproduces Figure 14, "DMA throughput with load dispatch (load
// dispatch ratio 0.5)": the memory-system operation rate for uniform and
// long-tail access streams at 50/95/100% read ratios, against the
// PCIe-only baseline. The cache behaviour is measured functionally (a
// real address stream through the real dispatcher and cache); the rate is
// then the bottleneck resource's capacity divided by its measured
// per-access load.
func Fig14(sc Scale) []*Table {
	t := &Table{
		ID:      "fig14",
		Title:   "Memory throughput with load dispatch, l=0.5 (Mops, 64 B accesses)",
		Columns: []string{"read %", "baseline(PCIe only)", "uniform", "long-tail"},
		Notes:   "NIC DRAM = 1/16 of host KVS; long-tail reaches the 180 Mops clock bound for read-intensive workloads",
	}
	pcieCap := float64(model.PCIeEndpoints) * model.PCIeRead64BOpsPerSec
	dramCap := model.NICDRAMBytesPerSec / model.CacheLineBytes

	for _, readPct := range []int{50, 95, 100} {
		uniform := measureDispatch(sc, readPct, false, pcieCap, dramCap)
		longtail := measureDispatch(sc, readPct, true, pcieCap, dramCap)
		t.Add(itoa(readPct), mops(pcieCap), mops(uniform), mops(longtail))
	}

	// The paper's companion question: what load dispatch ratio is optimal?
	// Solve the balance equation numerically for both workload shapes.
	opt := &Table{
		ID:      "fig14-optimal",
		Title:   "Numerically optimal load dispatch ratio (balance equation, §3.3.4)",
		Columns: []string{"workload", "optimal l", "modeled Mops", "h(l)"},
	}
	k := 1.0 / 16
	for _, w := range []struct {
		name string
		hit  func(float64) float64
	}{
		{"uniform", func(l float64) float64 { return dispatch.HitRateUniform(k, l) }},
		{"long-tail", func(l float64) float64 { return dispatch.HitRateZipf(k, l, 16e6) }},
	} {
		l, rate := dispatch.OptimalRatio(w.hit, 0, pcieCap, dramCap)
		if rate > model.PeakOpsPerSec {
			rate = model.PeakOpsPerSec // the clock caps what the pipeline can consume
		}
		opt.Add(w.name, f2(l), mops(rate), f2(w.hit(l)))
	}
	return []*Table{t, opt}
}

// measureDispatch runs a synthetic 64 B access stream through the real
// dispatcher+cache and converts measured resource loads into a system
// rate: min over resources of capacity/load, capped at the clock rate.
func measureDispatch(sc Scale, readPct int, zipfian bool, pcieCap, dramCap float64) float64 {
	host := memory.New(sc.MemBytes)
	cache := nicdram.New(host, sc.MemBytes/16)
	d := dispatch.New(host, cache, 0.5)
	rng := rand.New(rand.NewSource(sc.Seed))
	nLines := sc.MemBytes / memory.LineBytes
	var z *rand.Zipf
	if zipfian {
		z = rand.NewZipf(rng, 1.2, 1, nLines-1)
	}
	buf := make([]byte, memory.LineBytes)
	// KV updates rewrite objects, not whole aligned lines: a cached write
	// miss therefore fetches the line before merging (write-allocate) and
	// writes it back on eviction, while reads fetch the aligned region.
	wbuf := make([]byte, 24)

	n := sc.Ops * 10
	// Warm the cache with the first half, measure the second half.
	var warmStats memory.Stats
	var warmDRAM uint64
	for i := 0; i < n; i++ {
		if i == n/2 {
			warmStats = host.Stats()
			warmDRAM = cache.Stats().DRAMLineReads + cache.Stats().DRAMLineWrites
		}
		var line uint64
		if zipfian {
			line = z.Uint64()
		} else {
			line = uint64(rng.Int63n(int64(nLines)))
		}
		addr := line * memory.LineBytes
		if rng.Intn(100) < readPct {
			d.Read(addr, buf)
		} else {
			d.Write(addr+8, wbuf)
		}
	}
	measured := n - n/2
	pcieLoad := float64(host.Stats().Sub(warmStats).Accesses()) / float64(measured)
	dramOps := cache.Stats().DRAMLineReads + cache.Stats().DRAMLineWrites - warmDRAM
	dramLoad := float64(dramOps) / float64(measured)

	rate := model.PeakOpsPerSec
	if pcieLoad > 0 && pcieCap/pcieLoad < rate {
		rate = pcieCap / pcieLoad
	}
	if dramLoad > 0 && dramCap/dramLoad < rate {
		rate = dramCap / dramLoad
	}
	return rate
}
