// Package memory provides the simulated byte-addressable host memory that
// backs the KV-Direct store, with access accounting at DMA-request and
// cache-line granularity.
//
// The KV processor in the paper reaches host memory only through PCIe DMA,
// so "memory accesses per KV operation" — the quantity behind Figures 6,
// 9, 10 and 11 — is the number of DMA requests issued. Memory counts one
// access per Read/Write call (one DMA request, which may span several
// contiguous 64 B lines, like a multi-line TLP burst) and separately counts
// the lines touched for bandwidth modeling.
package memory

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// LineBytes is the access granularity used for line accounting, matching
// the paper's 64-byte DMA and cache-line granularity.
const LineBytes = 64

// Engine is the unified memory-access interface used by the KV processor
// (paper §3.3.4). Memory implements it directly; the DRAM load dispatcher
// wraps a Memory and implements it with NIC-DRAM caching.
type Engine interface {
	// Read copies len(buf) bytes starting at addr into buf.
	Read(addr uint64, buf []byte)
	// Write copies data into memory starting at addr.
	Write(addr uint64, data []byte)
}

// Stats is a snapshot of access counters.
type Stats struct {
	Reads      uint64 // DMA read requests
	Writes     uint64 // DMA write requests
	ReadLines  uint64 // 64 B lines covered by reads
	WriteLines uint64 // 64 B lines covered by writes
}

// Accesses returns total DMA requests (reads + writes).
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Lines returns total lines touched.
func (s Stats) Lines() uint64 { return s.ReadLines + s.WriteLines }

// Sub returns s - t, counter-wise; used to measure a window of activity.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:      s.Reads - t.Reads,
		Writes:     s.Writes - t.Writes,
		ReadLines:  s.ReadLines - t.ReadLines,
		WriteLines: s.WriteLines - t.WriteLines,
	}
}

// Memory is a simulated byte-addressable memory with atomic access counters.
// It is safe for concurrent use by multiple goroutines as long as they do
// not touch overlapping addresses (the same contract real DMA gives).
type Memory struct {
	data []byte

	reads      atomic.Uint64
	writes     atomic.Uint64
	readLines  atomic.Uint64
	writeLines atomic.Uint64
}

// New allocates a zeroed memory of the given size in bytes.
func New(size uint64) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// lines returns the number of LineBytes-aligned lines the range
// [addr, addr+n) overlaps.
func lines(addr uint64, n int) uint64 {
	if n <= 0 {
		return 0
	}
	first := addr / LineBytes
	last := (addr + uint64(n) - 1) / LineBytes
	return last - first + 1
}

func (m *Memory) check(addr uint64, n int) {
	if n < 0 || addr+uint64(n) > uint64(len(m.data)) || addr > uint64(len(m.data)) {
		panic(fmt.Sprintf("memory: access [%d,+%d) out of range [0,%d)", addr, n, len(m.data)))
	}
}

// Read implements Engine. It counts one DMA read request.
func (m *Memory) Read(addr uint64, buf []byte) {
	m.check(addr, len(buf))
	copy(buf, m.data[addr:addr+uint64(len(buf))])
	m.reads.Add(1)
	m.readLines.Add(lines(addr, len(buf)))
}

// Write implements Engine. It counts one DMA write request.
func (m *Memory) Write(addr uint64, data []byte) {
	m.check(addr, len(data))
	copy(m.data[addr:addr+uint64(len(data))], data)
	m.writes.Add(1)
	m.writeLines.Add(lines(addr, len(data)))
}

// Peek reads without counting an access. It is intended for tests and
// for host-CPU-side components (e.g. the slab daemon), which access host
// memory directly rather than over PCIe.
func (m *Memory) Peek(addr uint64, buf []byte) {
	m.check(addr, len(buf))
	copy(buf, m.data[addr:addr+uint64(len(buf))])
}

// Poke writes without counting an access (host-CPU-side writes).
func (m *Memory) Poke(addr uint64, data []byte) {
	m.check(addr, len(data))
	copy(m.data[addr:addr+uint64(len(data))], data)
}

// Stats returns a snapshot of the access counters.
func (m *Memory) Stats() Stats {
	return Stats{
		Reads:      m.reads.Load(),
		Writes:     m.writes.Load(),
		ReadLines:  m.readLines.Load(),
		WriteLines: m.writeLines.Load(),
	}
}

// ResetStats zeroes the access counters.
func (m *Memory) ResetStats() {
	m.reads.Store(0)
	m.writes.Store(0)
	m.readLines.Store(0)
	m.writeLines.Store(0)
}

// U64 helpers: the hash index and slab structures store little-endian
// fixed-width fields.

// ReadU64 reads a little-endian uint64 at addr (one DMA request).
func (m *Memory) ReadU64(addr uint64) uint64 {
	var b [8]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian uint64 at addr (one DMA request).
func (m *Memory) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}

// Partition describes a contiguous address range within a Memory, used to
// split the KVS space into hash index and slab regions.
type Partition struct {
	Base uint64
	Size uint64
}

// End returns the first address past the partition.
func (p Partition) End() uint64 { return p.Base + p.Size }

// Contains reports whether addr falls inside the partition.
func (p Partition) Contains(addr uint64) bool {
	return addr >= p.Base && addr < p.End()
}

// Split divides [0, total) into a hash-index partition covering ratio of
// the space (rounded down to a whole number of 64 B buckets) and a slab
// partition with the remainder, mirroring the paper's hash index ratio
// configured at initialization time.
func Split(total uint64, ratio float64) (index, slabs Partition) {
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	idxBytes := uint64(float64(total)*ratio) / LineBytes * LineBytes
	if idxBytes > total {
		idxBytes = total
	}
	index = Partition{Base: 0, Size: idxBytes}
	slabs = Partition{Base: idxBytes, Size: total - idxBytes}
	return index, slabs
}
