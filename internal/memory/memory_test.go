package memory

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(1024)
	data := []byte("hello, kv-direct")
	m.Write(100, data)
	got := make([]byte, len(data))
	m.Read(100, got)
	if !bytes.Equal(got, data) {
		t.Errorf("round trip: got %q, want %q", got, data)
	}
}

func TestAccessCounting(t *testing.T) {
	m := New(4096)
	buf := make([]byte, 64)
	m.Read(0, buf)
	m.Read(64, buf)
	m.Write(128, buf)
	s := m.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 2/1", s.Reads, s.Writes)
	}
	if s.Accesses() != 3 {
		t.Errorf("Accesses = %d, want 3", s.Accesses())
	}
	if s.ReadLines != 2 || s.WriteLines != 1 {
		t.Errorf("read/write lines = %d/%d, want 2/1", s.ReadLines, s.WriteLines)
	}
}

func TestLineCountingSpansAndAlignment(t *testing.T) {
	cases := []struct {
		addr uint64
		n    int
		want uint64
	}{
		{0, 64, 1},  // aligned single line
		{0, 65, 2},  // spills one byte into next line
		{63, 2, 2},  // straddles boundary
		{64, 64, 1}, // aligned second line
		{10, 5, 1},  // within one line
		{0, 128, 2}, // two full lines
		{32, 64, 2}, // unaligned 64 B touches two lines
		{0, 256, 4}, // slab-sized burst
		{100, 0, 0}, // empty
	}
	for _, c := range cases {
		if got := lines(c.addr, c.n); got != c.want {
			t.Errorf("lines(%d, %d) = %d, want %d", c.addr, c.n, got, c.want)
		}
	}
}

func TestPeekPokeNotCounted(t *testing.T) {
	m := New(256)
	m.Poke(0, []byte{1, 2, 3})
	buf := make([]byte, 3)
	m.Peek(0, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Errorf("Peek = %v, want [1 2 3]", buf)
	}
	if s := m.Stats(); s.Accesses() != 0 {
		t.Errorf("Peek/Poke counted accesses: %+v", s)
	}
}

func TestResetStats(t *testing.T) {
	m := New(256)
	m.Write(0, []byte{1})
	m.ResetStats()
	if s := m.Stats(); s.Accesses() != 0 || s.Lines() != 0 {
		t.Errorf("ResetStats left %+v", s)
	}
}

func TestStatsSub(t *testing.T) {
	m := New(256)
	buf := make([]byte, 8)
	m.Read(0, buf)
	before := m.Stats()
	m.Read(0, buf)
	m.Write(0, buf)
	d := m.Stats().Sub(before)
	if d.Reads != 1 || d.Writes != 1 {
		t.Errorf("window delta = %+v, want 1 read 1 write", d)
	}
}

func TestU64RoundTrip(t *testing.T) {
	m := New(64)
	m.WriteU64(8, 0xDEADBEEFCAFEBABE)
	if got := m.ReadU64(8); got != 0xDEADBEEFCAFEBABE {
		t.Errorf("U64 round trip = %#x", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(64)
	for name, fn := range map[string]func(){
		"read past end":  func() { m.Read(60, make([]byte, 8)) },
		"write past end": func() { m.Write(64, []byte{1}) },
		"huge addr":      func() { m.Read(1<<40, make([]byte, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSplitPartitions(t *testing.T) {
	idx, slab := Split(1<<20, 0.5)
	if idx.Base != 0 || idx.Size != 1<<19 {
		t.Errorf("index partition = %+v", idx)
	}
	if slab.Base != 1<<19 || slab.Size != 1<<19 {
		t.Errorf("slab partition = %+v", slab)
	}
	if idx.End() != slab.Base {
		t.Error("partitions not contiguous")
	}
}

func TestSplitRatioClamping(t *testing.T) {
	idx, slab := Split(1024, -1)
	if idx.Size != 0 || slab.Size != 1024 {
		t.Errorf("ratio<0: idx=%+v slab=%+v", idx, slab)
	}
	idx, slab = Split(1024, 2)
	if idx.Size != 1024 || slab.Size != 0 {
		t.Errorf("ratio>1: idx=%+v slab=%+v", idx, slab)
	}
}

func TestSplitBucketAligned(t *testing.T) {
	f := func(totalKB uint16, r uint8) bool {
		total := uint64(totalKB)*64 + 64 // at least one line, line-multiple
		ratio := float64(r) / 255
		idx, slab := Split(total, ratio)
		return idx.Size%LineBytes == 0 &&
			idx.Size+slab.Size == total &&
			idx.End() == slab.Base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionContains(t *testing.T) {
	p := Partition{Base: 100, Size: 50}
	for _, c := range []struct {
		addr uint64
		want bool
	}{{99, false}, {100, true}, {149, true}, {150, false}} {
		if got := p.Contains(c.addr); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestWriteReadBackProperty(t *testing.T) {
	m := New(1 << 16)
	f := func(addr uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a := uint64(addr)
		if a+uint64(len(data)) > m.Size() {
			a = m.Size() - uint64(len(data))
		}
		m.Write(a, data)
		got := make([]byte, len(data))
		m.Read(a, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
