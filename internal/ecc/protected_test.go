package ecc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"kvdirect/internal/hashtable"
	"kvdirect/internal/memory"
	"kvdirect/internal/slab"
)

func TestProtectedReadWriteClean(t *testing.T) {
	mem := memory.New(1 << 12)
	p := NewProtectedMemory(mem)
	data := []byte("protected payload spanning a couple of lines at least!!")
	p.Write(100, data)
	got := make([]byte, len(data))
	p.Read(100, got)
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
	if s := p.Stats(); s.Corrected+s.Uncorrectable != 0 {
		t.Fatalf("clean traffic produced fault events: %+v", s)
	}
}

func TestProtectedCorrectsSingleBitFlip(t *testing.T) {
	mem := memory.New(1 << 12)
	p := NewProtectedMemory(mem)
	data := bytes.Repeat([]byte{0xA5}, 64)
	p.Write(0, data)
	p.InjectBitFlip(17, 3)
	got := make([]byte, 64)
	p.Read(0, got)
	if !bytes.Equal(got, data) {
		t.Fatal("single-bit fault not corrected on read")
	}
	if p.Stats().Corrected != 1 {
		t.Fatalf("Corrected = %d, want 1", p.Stats().Corrected)
	}
	// The repair is persistent: a second read sees no fault.
	p.Read(0, got)
	if p.Stats().Corrected != 1 {
		t.Fatal("fault not repaired in place")
	}
}

func TestProtectedDetectsDoubleBitFlip(t *testing.T) {
	mem := memory.New(1 << 12)
	p := NewProtectedMemory(mem)
	p.Write(0, bytes.Repeat([]byte{0xFF}, 64))
	// Two flips in the same 64-bit word (bits 0 and 1: syndrome 3^5=6,
	// a data position, so the miscorrection trips the widened parity —
	// see DecodeLine's guarantees for the rare aliasing escape class).
	p.InjectBitFlip(8, 0)
	p.InjectBitFlip(8, 1)
	got := make([]byte, 64)
	p.Read(0, got)
	if p.Stats().Uncorrectable == 0 {
		t.Fatal("double-bit fault not detected")
	}
}

func TestProtectedScrub(t *testing.T) {
	mem := memory.New(1 << 14)
	p := NewProtectedMemory(mem)
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 1<<14)
	rng.Read(payload)
	p.Write(0, payload)
	// Sprinkle single-bit faults on distinct lines.
	for i := 0; i < 20; i++ {
		p.InjectBitFlip(uint64(i)*512+uint64(rng.Intn(64)), uint(rng.Intn(8)))
	}
	repaired, uncorrectable := p.Scrub()
	if repaired != 20 || uncorrectable != 0 {
		t.Fatalf("scrub repaired %d (want 20), uncorrectable %d", repaired, uncorrectable)
	}
	got := make([]byte, 1<<14)
	p.Read(0, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("scrubbed memory differs from original")
	}
}

func TestProtectedDMACountsUnchanged(t *testing.T) {
	// ECC verification must not charge extra DMAs: the sideband travels
	// with the line inside the DIMM.
	mem := memory.New(1 << 12)
	p := NewProtectedMemory(mem)
	buf := make([]byte, 100)
	p.Write(30, buf)
	p.Read(30, buf)
	if got := mem.Stats().Accesses(); got != 2 {
		t.Fatalf("ECC wrapper charged %d DMAs, want 2", got)
	}
}

func TestHashTableSurvivesBitFlips(t *testing.T) {
	// The full KVS stack on ECC-protected memory shrugs off single-bit
	// DRAM faults injected mid-workload.
	mem := memory.New(1 << 20)
	p := NewProtectedMemory(mem)
	idx, slabs := memory.Split(1<<20, 0.5)
	alloc := slab.New(slabs, slab.Options{})
	tbl, err := hashtable.New(p, alloc, hashtable.Config{Index: idx, InlineThreshold: 13, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	want := map[string][]byte{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("ecc-%04d", i)
		v := make([]byte, rng.Intn(200))
		rng.Read(v)
		if err := tbl.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// Inject faults into random populated addresses.
	for i := 0; i < 50; i++ {
		p.InjectBitFlip(uint64(rng.Intn(1<<20)), uint(rng.Intn(8)))
	}
	for k, v := range want {
		got, ok := tbl.Get([]byte(k))
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %s corrupted despite ECC", k)
		}
	}
	if _, err := tbl.Check(); err != nil {
		t.Fatalf("fsck after fault injection: %v", err)
	}
	st := p.Stats()
	if st.Corrected == 0 {
		t.Error("expected some corrected faults (50 injected)")
	}
	if st.Uncorrectable != 0 {
		t.Errorf("single-bit faults reported uncorrectable: %+v", st)
	}
}
