// Package ecc implements the ECC-DRAM spare-bit trick KV-Direct uses to
// store cache metadata (paper §4, "DRAM Load Dispatcher"):
//
// ECC DRAM carries 8 check bits per 64 bits of data. A Hamming code that
// corrects one bit in 64 needs only 7 check bits; the 8th is a parity bit
// that detects double-bit errors. KV-Direct widens the parity granularity
// from 64 data bits to 256 data bits, so a 64-byte line (eight 64-bit
// words) needs 8x7 Hamming bits + 2 wide parity bits instead of 8x8 —
// freeing 6 bits per line, enough for the DRAM cache's 4 address bits and
// dirty flag without extra memory accesses or unaligned 65-byte lines.
//
// This package provides the word-level SECDED code, the line-level layout
// with widened parity and embedded metadata, and error
// injection/correction — everything needed to verify the scheme actually
// works at the bit level.
package ecc

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// Status reports a decode outcome.
type Status int

// Decode outcomes.
const (
	OK            Status = iota // no error detected
	Corrected                   // single-bit error corrected
	Uncorrectable               // double-bit (or worse) error detected
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	default:
		return "uncorrectable"
	}
}

// ErrUncorrectable is returned when a double-bit error is detected.
var ErrUncorrectable = errors.New("ecc: uncorrectable error")

// --- word-level Hamming(71,64) + overall parity = SECDED(72,64) ---

// hammingBits is the number of check bits for 64 data bits: positions
// 1..71 in the classic Hamming layout, with check bits at powers of two
// (1,2,4,8,16,32,64) — 7 bits.
const hammingBits = 7

// encodePositions lays out 64 data bits into Hamming positions 1..71,
// skipping power-of-two positions.
func dataPosition(i int) int {
	// The i-th data bit (0-based) goes to the (i+1)-th non-power-of-two
	// position ≥ 3.
	pos := 0
	count := -1
	for count < i {
		pos++
		if pos&(pos-1) != 0 { // not a power of two
			count++
		}
	}
	return pos
}

var dataPos [64]int

// chunkCheck[k][b] is the XOR of the Hamming positions of the set bits of
// byte value b placed at data bits [8k, 8k+8). Check bit c is the parity
// of positions containing bit c, so the full check byte is simply the XOR
// of the positions of all set data bits — one table lookup per byte
// instead of a 7x71 scan. The fault-injection path verifies every DMA
// line, so encoding speed matters.
var chunkCheck [8][256]uint8

func init() {
	for i := range dataPos {
		dataPos[i] = dataPosition(i)
	}
	for k := 0; k < 8; k++ {
		for b := 0; b < 256; b++ {
			var x uint8
			for j := 0; j < 8; j++ {
				if b>>j&1 == 1 {
					x ^= uint8(dataPos[k*8+j])
				}
			}
			chunkCheck[k][b] = x
		}
	}
}

// EncodeWord computes the 7 Hamming check bits for a 64-bit word.
func EncodeWord(w uint64) uint8 {
	var check uint8
	for k := 0; k < 8; k++ {
		check ^= chunkCheck[k][byte(w>>(8*k))]
	}
	return check
}

// syndromeWord recomputes the syndrome of a (word, check) pair: zero if
// consistent, else the 1-based Hamming position of a single flipped bit.
func syndromeWord(w uint64, check uint8) int {
	fresh := EncodeWord(w)
	syn := int(fresh ^ check)
	return syn
}

// CorrectWord fixes a single-bit error in (w, check) if present.
// Returns the corrected word and what happened. Without an overall
// parity bit it cannot distinguish double errors — that is the wide
// parity's job at line level.
func CorrectWord(w uint64, check uint8) (uint64, Status) {
	syn := syndromeWord(w, check)
	if syn == 0 {
		return w, OK
	}
	// Syndrome names the flipped position: a data position flips the
	// corresponding data bit; a check position means the check bits
	// themselves were hit (data intact).
	if syn&(syn-1) == 0 {
		return w, Corrected // a check bit flipped; data is fine
	}
	for i := 0; i < 64; i++ {
		if dataPos[i] == syn {
			return w ^ 1<<uint(i), Corrected
		}
	}
	// Syndrome points outside the code: more than one bit flipped.
	return w, Uncorrectable
}

// --- line level: 64 B data + metadata in the freed bits ---

// MetaBits is how many spare bits the widened-parity layout frees per
// 64-byte line (8 words x 8 ECC bits = 64; 8x7 Hamming + 2 wide parity
// = 58; 6 spare).
const MetaBits = 6

// MetaMask masks valid metadata values.
const MetaMask = (1 << MetaBits) - 1

// LineBytes is the data payload per line.
const LineBytes = 64

// CheckBytes is the ECC sideband per line (8 bits per word, as the DIMM
// provides).
const CheckBytes = 8

// Line is an encoded 64-byte line: data plus the 8-byte ECC sideband
// holding 8x7 Hamming bits, 2 widened parity bits and 6 metadata bits.
type Line struct {
	Data  [LineBytes]byte
	Check [CheckBytes]byte
}

// sidebandLayout: bits 0..55 = eight 7-bit Hamming codes; bit 56,57 =
// parity over first/second 256 data bits; bits 58..63 = metadata.
const (
	parityShift = 56
	metaShift   = 58
)

// EncodeLine encodes data and meta (MetaBits wide) into a Line.
func EncodeLine(data *[LineBytes]byte, meta uint8) Line {
	var l Line
	l.Data = *data
	var side uint64
	for w := 0; w < 8; w++ {
		word := binary.LittleEndian.Uint64(data[w*8:])
		side |= uint64(EncodeWord(word)) << uint(7*w)
	}
	// Widened parity: one bit per 256 data bits (4 words).
	for half := 0; half < 2; half++ {
		parity := 0
		for w := half * 4; w < half*4+4; w++ {
			parity ^= bits.OnesCount64(binary.LittleEndian.Uint64(data[w*8:])) & 1
		}
		side |= uint64(parity) << uint(parityShift+half)
	}
	side |= uint64(meta&MetaMask) << metaShift
	binary.LittleEndian.PutUint64(l.Check[:], side)
	return l
}

// DecodeLine verifies and (if needed) corrects a line, returning the
// data, the metadata and the decode status.
//
// Guarantees: any single flipped bit per word (data or check) is
// corrected — including one flip in each of several words. Double flips
// within one word are detected when the Hamming syndrome falls outside
// the code or when its miscorrection leaves the widened parity
// inconsistent (an odd total flip count). The widened-parity trade-off
// the paper accepts: a double flip whose syndrome aliases to a check-bit
// position leaves the data flips undetected, a strictly weaker detection
// than classic per-word SECDED in exchange for the 6 freed metadata bits.
func DecodeLine(l *Line) (data [LineBytes]byte, meta uint8, status Status, err error) {
	side := binary.LittleEndian.Uint64(l.Check[:])
	meta = uint8(side >> metaShift & MetaMask)
	data = l.Data
	worst := OK
	for w := 0; w < 8; w++ {
		word := binary.LittleEndian.Uint64(data[w*8:])
		check := uint8(side >> uint(7*w) & 0x7F)
		fixed, st := CorrectWord(word, check)
		if st == Uncorrectable {
			return data, meta, Uncorrectable, ErrUncorrectable
		}
		if st == Corrected {
			worst = Corrected
			binary.LittleEndian.PutUint64(data[w*8:], fixed)
		}
	}
	// Verify the widened parity against the (corrected) data.
	for half := 0; half < 2; half++ {
		parity := 0
		for w := half * 4; w < half*4+4; w++ {
			parity ^= bits.OnesCount64(binary.LittleEndian.Uint64(data[w*8:])) & 1
		}
		stored := int(side >> uint(parityShift+half) & 1)
		if parity != stored {
			// The Hamming layer believed its corrections, but the parity
			// over the half disagrees: an even-count (double-bit) error
			// slipped through one word.
			return data, meta, Uncorrectable, ErrUncorrectable
		}
	}
	return data, meta, worst, nil
}

// PackCacheMeta packs the DRAM cache's per-line metadata — a 4-bit
// address tag (host-to-NIC memory ratio up to 16) and the dirty flag —
// into the 6 spare bits, with one bit left over.
func PackCacheMeta(tag uint8, dirty bool) uint8 {
	m := tag & 0x0F
	if dirty {
		m |= 1 << 4
	}
	return m
}

// UnpackCacheMeta reverses PackCacheMeta.
func UnpackCacheMeta(meta uint8) (tag uint8, dirty bool) {
	return meta & 0x0F, meta&(1<<4) != 0
}
