package ecc

import (
	"kvdirect/internal/memory"
)

// ProtectedMemory wraps a simulated host memory with the line-level SECDED
// code, the way the ECC DIMMs behind KV-Direct's DMA engine do: every
// 64-byte line carries an 8-byte sideband (8x7 Hamming + widened parity +
// spare metadata bits). Reads verify and transparently correct single-bit
// faults; uncorrectable (double-bit) faults are counted and surfaced via
// Stats, mirroring a machine-check the host would log.
//
// ProtectedMemory implements memory.Engine, so the whole KVS stack — hash
// index, slabs, dispatcher — can run on top of it unchanged; InjectBitFlip
// and Scrub exist for fault-injection testing.
type ProtectedMemory struct {
	mem  *memory.Memory
	side []byte // CheckBytes per line

	stats ProtectedStats
}

// ProtectedStats counts fault events.
type ProtectedStats struct {
	Corrected     uint64 // single-bit faults repaired on access
	Uncorrectable uint64 // double-bit faults detected (data served as-is)
	Scrubs        uint64 // lines repaired by Scrub
}

// NewProtectedMemory wraps mem, computing sidebands for its current
// contents (all-zero memory has a well-defined code too).
func NewProtectedMemory(mem *memory.Memory) *ProtectedMemory {
	nLines := mem.Size() / LineBytes
	p := &ProtectedMemory{
		mem:  mem,
		side: make([]byte, nLines*CheckBytes),
	}
	// Fast path for the common case of freshly allocated (zeroed) memory:
	// every all-zero line shares one sideband, so wrapping a multi-hundred-
	// megabyte KVS takes a scan instead of a full re-encode.
	var zero [LineBytes]byte
	zeroSide := EncodeLine(&zero, 0)
	var line [LineBytes]byte
	for i := uint64(0); i < nLines; i++ {
		mem.Peek(i*LineBytes, line[:])
		if line == zero {
			copy(p.side[i*CheckBytes:], zeroSide.Check[:])
			continue
		}
		l := EncodeLine(&line, 0)
		copy(p.side[i*CheckBytes:], l.Check[:])
	}
	return p
}

// Stats returns a snapshot of the fault counters.
func (p *ProtectedMemory) Stats() ProtectedStats { return p.stats }

// lineSpan returns the first line and count covering [addr, addr+n).
func lineSpan(addr uint64, n int) (first uint64, count int) {
	first = addr / LineBytes
	last := (addr + uint64(n) - 1) / LineBytes
	return first, int(last - first + 1)
}

// verifyLine decodes one line in place, repairing correctable faults in
// the underlying memory.
func (p *ProtectedMemory) verifyLine(line uint64) {
	var l Line
	p.mem.Peek(line*LineBytes, l.Data[:])
	copy(l.Check[:], p.side[line*CheckBytes:])
	data, _, status, err := DecodeLine(&l)
	switch {
	case err != nil:
		p.stats.Uncorrectable++
	case status == Corrected:
		p.stats.Corrected++
		p.mem.Poke(line*LineBytes, data[:])
	}
}

// Read implements memory.Engine: one counted DMA for the payload, with
// every covered line ECC-verified (the DIMM checks on the fly; no extra
// DMA is charged for the sideband, which travels with the line).
func (p *ProtectedMemory) Read(addr uint64, buf []byte) {
	if len(buf) == 0 {
		return
	}
	first, count := lineSpan(addr, len(buf))
	for i := 0; i < count; i++ {
		p.verifyLine(first + uint64(i))
	}
	p.mem.Read(addr, buf)
}

// Write implements memory.Engine: one counted DMA, then the sidebands of
// every touched line are recomputed (read-modify-write inside the DIMM
// for partial lines).
func (p *ProtectedMemory) Write(addr uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	p.mem.Write(addr, data)
	first, count := lineSpan(addr, len(data))
	var line [LineBytes]byte
	for i := 0; i < count; i++ {
		ln := first + uint64(i)
		p.mem.Peek(ln*LineBytes, line[:])
		l := EncodeLine(&line, 0)
		copy(p.side[ln*CheckBytes:], l.Check[:])
	}
}

// InjectBitFlip flips one data bit without updating the sideband — a
// simulated DRAM fault.
func (p *ProtectedMemory) InjectBitFlip(addr uint64, bit uint) {
	var b [1]byte
	p.mem.Peek(addr, b[:])
	b[0] ^= 1 << (bit % 8)
	p.mem.Poke(addr, b[:])
}

// Scrub walks the whole memory, repairing every correctable fault (the
// background patrol scrubber real memory controllers run). It returns the
// number of lines repaired and the number found uncorrectable.
func (p *ProtectedMemory) Scrub() (repaired, uncorrectable uint64) {
	before := p.stats
	nLines := p.mem.Size() / LineBytes
	for i := uint64(0); i < nLines; i++ {
		p.verifyLine(i)
	}
	p.stats.Scrubs += p.stats.Corrected - before.Corrected
	return p.stats.Corrected - before.Corrected, p.stats.Uncorrectable - before.Uncorrectable
}
