package ecc

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeCleanLine(t *testing.T) {
	var data [LineBytes]byte
	for i := range data {
		data[i] = byte(i * 7)
	}
	l := EncodeLine(&data, 0x2A)
	got, meta, status, err := DecodeLine(&l)
	if err != nil || status != OK {
		t.Fatalf("clean decode: %v %v", status, err)
	}
	if !bytes.Equal(got[:], data[:]) {
		t.Fatal("clean decode corrupted data")
	}
	if meta != 0x2A {
		t.Fatalf("meta = %#x, want 0x2A", meta)
	}
}

func TestMetaMasked(t *testing.T) {
	var data [LineBytes]byte
	l := EncodeLine(&data, 0xFF) // wider than MetaBits
	_, meta, _, _ := DecodeLine(&l)
	if meta != MetaMask {
		t.Fatalf("meta = %#x, want masked %#x", meta, MetaMask)
	}
}

func TestEverySingleDataBitFlipCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var data [LineBytes]byte
	rng.Read(data[:])
	clean := EncodeLine(&data, 0x15)
	for bit := 0; bit < LineBytes*8; bit++ {
		l := clean
		l.Data[bit/8] ^= 1 << (bit % 8)
		got, meta, status, err := DecodeLine(&l)
		if err != nil || status != Corrected {
			t.Fatalf("bit %d: status %v err %v", bit, status, err)
		}
		if !bytes.Equal(got[:], data[:]) {
			t.Fatalf("bit %d: correction produced wrong data", bit)
		}
		if meta != 0x15 {
			t.Fatalf("bit %d: meta corrupted", bit)
		}
	}
}

func TestSingleCheckBitFlipHarmless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var data [LineBytes]byte
	rng.Read(data[:])
	clean := EncodeLine(&data, 7)
	// Flip each Hamming check bit (sideband bits 0..55).
	for bit := 0; bit < 56; bit++ {
		l := clean
		l.Check[bit/8] ^= 1 << (bit % 8)
		got, _, status, err := DecodeLine(&l)
		if err != nil {
			t.Fatalf("check bit %d: %v", bit, err)
		}
		if status != Corrected {
			t.Fatalf("check bit %d: status %v, want Corrected", bit, status)
		}
		if !bytes.Equal(got[:], data[:]) {
			t.Fatalf("check bit %d: data corrupted", bit)
		}
	}
}

func TestOneFlipPerWordAllCorrected(t *testing.T) {
	// Eight errors, one in each word: each word's Hamming corrects its
	// own (the per-word independence the layout preserves).
	rng := rand.New(rand.NewSource(3))
	var data [LineBytes]byte
	rng.Read(data[:])
	l := EncodeLine(&data, 1)
	for w := 0; w < 8; w++ {
		l.Data[w*8+rng.Intn(8)] ^= 1 << rng.Intn(8)
	}
	got, _, status, err := DecodeLine(&l)
	if err != nil || status != Corrected {
		t.Fatalf("status %v err %v", status, err)
	}
	if !bytes.Equal(got[:], data[:]) {
		t.Fatal("multi-word correction wrong")
	}
}

func TestDoubleFlipInOneWordDetectedOrHonest(t *testing.T) {
	// Flip two data bits in the same word across many random trials: the
	// decode must never silently return wrong data with status OK, and
	// must report Uncorrectable for the (overwhelmingly common) cases
	// where the syndrome or parity exposes it.
	rng := rand.New(rand.NewSource(4))
	detected, aliased := 0, 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		var data [LineBytes]byte
		rng.Read(data[:])
		l := EncodeLine(&data, 3)
		w := rng.Intn(8)
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		for b2 == b1 {
			b2 = rng.Intn(64)
		}
		l.Data[w*8+b1/8] ^= 1 << (b1 % 8)
		l.Data[w*8+b2/8] ^= 1 << (b2 % 8)
		got, _, status, err := DecodeLine(&l)
		switch {
		case err != nil:
			detected++
		case status == OK:
			t.Fatal("double error decoded as OK")
		case bytes.Equal(got[:], data[:]):
			t.Fatal("double error 'corrected' to original — impossible")
		default:
			aliased++ // documented check-bit-alias escape
		}
	}
	if detected < trials*8/10 {
		t.Errorf("only %d/%d double errors detected; aliased %d", detected, trials, aliased)
	}
}

func TestWordCodecRoundTripProperty(t *testing.T) {
	f := func(w uint64) bool {
		check := EncodeWord(w)
		fixed, status := CorrectWord(w, check)
		return status == OK && fixed == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordSingleFlipProperty(t *testing.T) {
	f := func(w uint64, bitRaw uint8) bool {
		bit := int(bitRaw) % 64
		check := EncodeWord(w)
		fixed, status := CorrectWord(w^1<<uint(bit), check)
		return status == Corrected && fixed == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackCacheMeta(t *testing.T) {
	for tag := uint8(0); tag < 16; tag++ {
		for _, dirty := range []bool{false, true} {
			m := PackCacheMeta(tag, dirty)
			if m > MetaMask {
				t.Fatalf("packed meta %#x exceeds %d bits", m, MetaBits)
			}
			gt, gd := UnpackCacheMeta(m)
			if gt != tag || gd != dirty {
				t.Fatalf("round trip (%d,%v) -> (%d,%v)", tag, dirty, gt, gd)
			}
		}
	}
}

func TestCacheMetaSurvivesLineErrors(t *testing.T) {
	// The whole point: cache tag + dirty flag ride in the spare bits and
	// survive a correctable data error.
	var data [LineBytes]byte
	for i := range data {
		data[i] = byte(i)
	}
	l := EncodeLine(&data, PackCacheMeta(11, true))
	l.Data[17] ^= 0x10
	got, meta, status, err := DecodeLine(&l)
	if err != nil || status != Corrected {
		t.Fatalf("decode: %v %v", status, err)
	}
	tag, dirty := UnpackCacheMeta(meta)
	if tag != 11 || !dirty {
		t.Fatalf("metadata lost: tag=%d dirty=%v", tag, dirty)
	}
	if !bytes.Equal(got[:], data[:]) {
		t.Fatal("data not corrected")
	}
}

func TestDataPositionsAreValid(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		p := dataPos[i]
		if p < 3 || p > 71 {
			t.Fatalf("data bit %d at invalid position %d", i, p)
		}
		if p&(p-1) == 0 {
			t.Fatalf("data bit %d at power-of-two position %d", i, p)
		}
		if seen[p] {
			t.Fatalf("position %d reused", p)
		}
		seen[p] = true
	}
}

func TestSidebandBudget(t *testing.T) {
	// 8 words x 7 Hamming + 2 parity + 6 meta = exactly 64 sideband bits.
	if 8*hammingBits+2+MetaBits != CheckBytes*8 {
		t.Fatal("sideband layout does not fit the 8-byte ECC budget")
	}
	// Layout constants must not overlap.
	if parityShift < 8*hammingBits || metaShift < parityShift+2 {
		t.Fatal("sideband fields overlap")
	}
}

func TestWideParityCoversCorrectHalves(t *testing.T) {
	var data [LineBytes]byte
	l := EncodeLine(&data, 0)
	side := binary.LittleEndian.Uint64(l.Check[:])
	// All-zero data: both parity bits clear.
	if side>>parityShift&3 != 0 {
		t.Fatal("zero data should have zero parity")
	}
	// One bit in the second half flips only the second parity bit.
	data[40] = 1
	l = EncodeLine(&data, 0)
	side = binary.LittleEndian.Uint64(l.Check[:])
	if side>>parityShift&1 != 0 || side>>(parityShift+1)&1 != 1 {
		t.Fatalf("parity halves mapped wrong: %b", side>>parityShift&3)
	}
}
