package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestGaugesSetGet(t *testing.T) {
	g := NewGauges()
	if got := g.Get("repl.lag"); got != 0 {
		t.Fatalf("unregistered gauge = %d", got)
	}
	g.Set("repl.lag", 7)
	g.Set("repl.lag", 3) // gauges go down, unlike counters
	if got := g.Get("repl.lag"); got != 3 {
		t.Fatalf("lag = %d, want 3", got)
	}
}

func TestGaugesSetMax(t *testing.T) {
	g := NewGauges()
	g.SetMax("repl.lag_max", 5)
	g.SetMax("repl.lag_max", 2)
	g.SetMax("repl.lag_max", 9)
	if got := g.Get("repl.lag_max"); got != 9 {
		t.Fatalf("lag_max = %d, want 9", got)
	}
}

func TestGaugesSnapshotOrderAndString(t *testing.T) {
	g := NewGauges()
	g.Set("test.b", 2)
	g.Set("test.a", 1)
	snap := g.Snapshot()
	if len(snap) != 2 || snap[0].Name != "test.b" || snap[1].Name != "test.a" {
		t.Fatalf("snapshot %v not in registration order", snap)
	}
	if s := g.String(); !strings.Contains(s, "test.b=2\n") || !strings.Contains(s, "test.a=1\n") {
		t.Fatalf("String() = %q", s)
	}
}

func TestGaugesConcurrent(t *testing.T) {
	g := NewGauges()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Set("test.x", uint64(i))
				g.SetMax("test.x_max", uint64(w*1000+i))
				_ = g.Get("test.x")
			}
		}(w)
	}
	wg.Wait()
	if got := g.Get("test.x_max"); got != 7999 {
		t.Fatalf("x_max = %d, want 7999", got)
	}
}
