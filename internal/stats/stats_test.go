package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.N() != 0 || s.Variance() != 0 {
		t.Fatalf("zero Summary not zero: %+v", s)
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
	if got := s.Mean(); math.Abs(got-3) > 1e-12 {
		t.Errorf("Mean = %g, want 3", got)
	}
	if got := s.Variance(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Variance = %g, want 2.5", got)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %g/%g, want 1/5", s.Min(), s.Max())
	}
}

func TestSummarySingleValue(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Min() != 42 || s.Max() != 42 {
		t.Errorf("single-value summary wrong: %+v", s)
	}
	if s.Variance() != 0 {
		t.Errorf("Variance of one point = %g, want 0", s.Variance())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Summary
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 5
		s.Add(xs[i])
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	naiveVar := varSum / float64(len(xs)-1)
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Errorf("Mean = %g, want %g", s.Mean(), mean)
	}
	if math.Abs(s.Variance()-naiveVar) > 1e-9 {
		t.Errorf("Variance = %g, want %g", s.Variance(), naiveVar)
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := NewSample(101)
	for i := 0; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 0}, {50, 50}, {95, 95}, {100, 100}, {25, 25},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestSamplePercentileInterpolates(t *testing.T) {
	s := NewSample(2)
	s.Add(0)
	s.Add(10)
	if got := s.Percentile(50); math.Abs(got-5) > 1e-9 {
		t.Errorf("Percentile(50) of {0,10} = %g, want 5", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.N() != 0 {
		t.Error("empty sample should return zeros")
	}
}

func TestSampleCDFMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSample(1000)
	for i := 0; i < 1000; i++ {
		s.Add(rng.ExpFloat64())
	}
	pts := s.CDF([]float64{1, 5, 25, 50, 75, 95, 99})
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Errorf("CDF not monotonic at %d: %v", i, pts)
		}
		if pts[i].Fraction <= pts[i-1].Fraction {
			t.Errorf("CDF fractions not increasing at %d", i)
		}
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSample(int(n) + 1)
		for i := 0; i <= int(n); i++ {
			s.Add(rng.Float64() * 100)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d, want 100", h.N())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 10 {
			t.Errorf("bucket %d = %d, want 10", i, h.Bucket(i))
		}
	}
	if got := h.Quantile(0.5); math.Abs(got-50) > 10 {
		t.Errorf("Quantile(0.5) = %g, want ~50", got)
	}
	if got := h.Mean(); math.Abs(got-50) > 1 {
		t.Errorf("Mean = %g, want ~50", got)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(100)
	if h.Bucket(0) != 1 || h.Bucket(9) != 1 {
		t.Errorf("clamping failed: first=%d last=%d", h.Bucket(0), h.Bucket(9))
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with hi<=lo should panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(5)
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("Quantile(-1) should clamp to Quantile(0)")
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("Quantile(2)=%g should clamp to Quantile(1)=%g", got, h.Quantile(1))
	}
	if h.Quantile(0.5) < 5 || h.Quantile(0.5) > 7 {
		t.Errorf("Quantile(0.5) = %g, want within bucket containing 5", h.Quantile(0.5))
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should return zeros")
	}
}
