package stats

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Counters is a registry of named monotonic event counters, safe for
// concurrent use. It backs the fault-injection registry and the network
// layer's health accounting: every injected and recovered fault in the
// system ends up as a named counter here, so tests and operators can
// assert "nothing happened silently".
//
// Counter handles returned by Counter are stable for the lifetime of the
// registry, so hot paths can resolve a name once and increment an
// atomic thereafter.
type Counters struct {
	mu    sync.RWMutex
	order []string
	vals  map[string]*atomic.Uint64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{vals: map[string]*atomic.Uint64{}}
}

// Counter returns the counter registered under name, creating it at zero
// on first use.
func (c *Counters) Counter(name string) *atomic.Uint64 {
	c.mu.RLock()
	v := c.vals[name]
	c.mu.RUnlock()
	if v != nil {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v = c.vals[name]; v == nil {
		v = new(atomic.Uint64)
		c.vals[name] = v
		c.order = append(c.order, name)
	}
	return v
}

// Add increments name by delta.
func (c *Counters) Add(name string, delta uint64) { c.Counter(name).Add(delta) }

// Get returns name's current value (zero if never registered).
func (c *Counters) Get(name string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if v := c.vals[name]; v != nil {
		return v.Load()
	}
	return 0
}

// Counter is one (name, value) snapshot entry.
type CounterValue struct {
	Name  string
	Value uint64
}

// Snapshot returns all counters in registration order.
func (c *Counters) Snapshot() []CounterValue {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]CounterValue, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, CounterValue{Name: name, Value: c.vals[name].Load()})
	}
	return out
}

// Total returns the sum of all counters.
func (c *Counters) Total() uint64 {
	var n uint64
	for _, cv := range c.Snapshot() {
		n += cv.Value
	}
	return n
}

// String renders the counters as "name=value" lines in registration
// order, matching the server's status-register text format.
func (c *Counters) String() string {
	var b strings.Builder
	for _, cv := range c.Snapshot() {
		fmt.Fprintf(&b, "%s=%d\n", cv.Name, cv.Value)
	}
	return b.String()
}
