package stats

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Gauges is a registry of named instantaneous values, the non-monotonic
// sibling of Counters: where a counter accumulates events, a gauge
// reports a current level — replication lag in entries, the size of a
// catch-up backlog, the number of live peer streams. Safe for
// concurrent use; handles returned by Gauge are stable so hot paths
// resolve a name once.
type Gauges struct {
	mu    sync.RWMutex
	order []string
	vals  map[string]*atomic.Uint64
}

// NewGauges returns an empty registry.
func NewGauges() *Gauges {
	return &Gauges{vals: map[string]*atomic.Uint64{}}
}

// Gauge returns the gauge registered under name, creating it at zero on
// first use.
func (g *Gauges) Gauge(name string) *atomic.Uint64 {
	g.mu.RLock()
	v := g.vals[name]
	g.mu.RUnlock()
	if v != nil {
		return v
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if v = g.vals[name]; v == nil {
		v = new(atomic.Uint64)
		g.vals[name] = v
		g.order = append(g.order, name)
	}
	return v
}

// Set stores the current level of name.
func (g *Gauges) Set(name string, v uint64) { g.Gauge(name).Store(v) }

// Get returns name's current level (zero if never registered).
func (g *Gauges) Get(name string) uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if v := g.vals[name]; v != nil {
		return v.Load()
	}
	return 0
}

// SetMax raises name to v if v is higher, for high-water marks.
func (g *Gauges) SetMax(name string, v uint64) {
	gv := g.Gauge(name)
	for {
		cur := gv.Load()
		if v <= cur || gv.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot returns all gauges in registration order.
func (g *Gauges) Snapshot() []CounterValue {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]CounterValue, 0, len(g.order))
	for _, name := range g.order {
		out = append(out, CounterValue{Name: name, Value: g.vals[name].Load()})
	}
	return out
}

// String renders the gauges as "name=value" lines in registration
// order, matching the counter/status-register text format.
func (g *Gauges) String() string {
	var b strings.Builder
	for _, cv := range g.Snapshot() {
		fmt.Fprintf(&b, "%s=%d\n", cv.Name, cv.Value)
	}
	return b.String()
}
