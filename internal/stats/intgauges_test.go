package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestIntGaugesNegativeLevels(t *testing.T) {
	// Regression: replication lag computed as primary-seq minus acked-seq
	// can transiently go negative when an ack races local bookkeeping.
	// Stored in an unsigned gauge that wraps to ~1.8e19; a signed gauge
	// must report the negative value as itself.
	g := NewIntGauges()
	primarySeq, ackedSeq := int64(100), int64(103)
	g.Set("repl.lag", primarySeq-ackedSeq)
	if got := g.Get("repl.lag"); got != -3 {
		t.Fatalf("negative lag = %d, want -3", got)
	}
	// The unsigned registry wraps the same value — the blind spot this
	// type exists to close.
	u := NewGauges()
	u.Set("repl.lag", uint64(primarySeq-ackedSeq))
	if got := u.Get("repl.lag"); got < 1<<63 {
		t.Fatalf("expected unsigned wrap, got %d", got)
	}
	if s := g.String(); !strings.Contains(s, "repl.lag=-3\n") {
		t.Fatalf("String() = %q", s)
	}
}

func TestIntGaugesSetGetAdd(t *testing.T) {
	g := NewIntGauges()
	if got := g.Get("repl.lag"); got != 0 {
		t.Fatalf("unregistered gauge = %d", got)
	}
	g.Set("repl.lag", 7)
	g.Add("repl.lag", -9)
	if got := g.Get("repl.lag"); got != -2 {
		t.Fatalf("lag = %d, want -2", got)
	}
	g.Set("repl.lag", 3)
	if got := g.Get("repl.lag"); got != 3 {
		t.Fatalf("lag = %d, want 3", got)
	}
}

func TestIntGaugesSetMax(t *testing.T) {
	g := NewIntGauges()
	g.SetMax("repl.lag_max", -5)
	if got := g.Get("repl.lag_max"); got != 0 {
		// A fresh gauge starts at 0; -5 must not raise it.
		t.Fatalf("lag_max = %d, want 0", got)
	}
	g.SetMax("repl.lag_max", 9)
	g.SetMax("repl.lag_max", 2)
	if got := g.Get("repl.lag_max"); got != 9 {
		t.Fatalf("lag_max = %d, want 9", got)
	}
}

func TestIntGaugesSnapshotOrder(t *testing.T) {
	g := NewIntGauges()
	g.Set("test.b", -2)
	g.Set("test.a", 1)
	snap := g.Snapshot()
	if len(snap) != 2 || snap[0].Name != "test.b" || snap[1].Name != "test.a" {
		t.Fatalf("snapshot %v not in registration order", snap)
	}
	if snap[0].Value != -2 {
		t.Fatalf("snapshot value = %d", snap[0].Value)
	}
}

func TestIntGaugesConcurrent(t *testing.T) {
	g := NewIntGauges()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Set("test.x", int64(i-500))
				g.SetMax("test.x_max", int64(w*1000+i))
				g.Add("test.net", 1)
				g.Add("test.net", -1)
			}
		}(w)
	}
	wg.Wait()
	if got := g.Get("test.x_max"); got != 7999 {
		t.Fatalf("x_max = %d, want 7999", got)
	}
	if got := g.Get("test.net"); got != 0 {
		t.Fatalf("balanced adds = %d, want 0", got)
	}
}
