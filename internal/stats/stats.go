// Package stats provides small statistics helpers used by the KV-Direct
// experiments: streaming summaries, fixed-bucket histograms, percentile
// estimation and CDF extraction.
//
// All types are deterministic and allocation-light so they can be used
// inside tight simulation loops.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming count/sum/min/max/mean/variance using
// Welford's algorithm.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the minimum observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the maximum observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the sample variance, or 0 with fewer than 2 observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Sample collects raw observations for exact percentile queries.
// It is intended for experiment-sized data sets (up to a few million points).
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a Sample with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// CDF returns (value, cumulative fraction) pairs at the given percentile
// points, suitable for plotting a CDF like the paper's Figure 3b.
func (s *Sample) CDF(points []float64) []CDFPoint {
	out := make([]CDFPoint, 0, len(points))
	for _, p := range points {
		out = append(out, CDFPoint{Fraction: p / 100, Value: s.Percentile(p)})
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Fraction float64 // cumulative probability in [0,1]
	Value    float64
}

// Histogram is a fixed-width bucket histogram over [lo, hi). Observations
// outside the range are clamped into the first/last bucket.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []uint64
	n       uint64
}

// NewHistogram creates a histogram with nbuckets equal-width buckets
// spanning [lo, hi). It panics if the range or bucket count is invalid.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if nbuckets <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) x%d", lo, hi, nbuckets))
	}
	return &Histogram{
		lo:      lo,
		hi:      hi,
		width:   (hi - lo) / float64(nbuckets),
		buckets: make([]uint64, nbuckets),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// BucketLow returns the inclusive lower bound of bucket i.
func (h *Histogram) BucketLow(i int) float64 { return h.lo + float64(i)*h.width }

// Quantile returns an estimate of the q-th quantile (q in [0,1]) by linear
// interpolation within the containing bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := 0.0
	for i, c := range h.buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.BucketLow(i) + frac*h.width
		}
		cum = next
	}
	return h.hi
}

// Mean returns the histogram mean using bucket midpoints.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	sum := 0.0
	for i, c := range h.buckets {
		sum += (h.BucketLow(i) + h.width/2) * float64(c)
	}
	return sum / float64(h.n)
}
