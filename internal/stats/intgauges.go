package stats

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// IntGauges is the signed sibling of Gauges. Unsigned gauges have a
// blind spot: a level that can transiently go negative — replication
// lag measured as primary-sequence minus acked-sequence while an ack
// races ahead of the local bookkeeping — wraps to a huge positive
// value when stored in an atomic.Uint64. IntGauges stores int64 so
// negative levels survive as themselves and dashboards can clamp or
// display them deliberately.
type IntGauges struct {
	mu    sync.RWMutex
	order []string
	vals  map[string]*atomic.Int64
}

// NewIntGauges returns an empty registry.
func NewIntGauges() *IntGauges {
	return &IntGauges{vals: map[string]*atomic.Int64{}}
}

// Gauge returns the gauge registered under name, creating it at zero on
// first use.
func (g *IntGauges) Gauge(name string) *atomic.Int64 {
	g.mu.RLock()
	v := g.vals[name]
	g.mu.RUnlock()
	if v != nil {
		return v
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if v = g.vals[name]; v == nil {
		v = new(atomic.Int64)
		g.vals[name] = v
		g.order = append(g.order, name)
	}
	return v
}

// Set stores the current level of name.
func (g *IntGauges) Set(name string, v int64) { g.Gauge(name).Store(v) }

// Add moves name by delta, which may be negative.
func (g *IntGauges) Add(name string, delta int64) { g.Gauge(name).Add(delta) }

// Get returns name's current level (zero if never registered).
func (g *IntGauges) Get(name string) int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if v := g.vals[name]; v != nil {
		return v.Load()
	}
	return 0
}

// SetMax raises name to v if v is higher, for high-water marks.
func (g *IntGauges) SetMax(name string, v int64) {
	gv := g.Gauge(name)
	for {
		cur := gv.Load()
		if v <= cur || gv.CompareAndSwap(cur, v) {
			return
		}
	}
}

// IntValue is one (name, value) snapshot entry.
type IntValue struct {
	Name  string
	Value int64
}

// Snapshot returns all gauges in registration order.
func (g *IntGauges) Snapshot() []IntValue {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]IntValue, 0, len(g.order))
	for _, name := range g.order {
		out = append(out, IntValue{Name: name, Value: g.vals[name].Load()})
	}
	return out
}

// String renders the gauges as "name=value" lines in registration
// order, matching the counter/status-register text format.
func (g *IntGauges) String() string {
	var b strings.Builder
	for _, iv := range g.Snapshot() {
		fmt.Fprintf(&b, "%s=%d\n", iv.Name, iv.Value)
	}
	return b.String()
}
