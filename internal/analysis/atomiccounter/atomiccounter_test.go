package atomiccounter_test

import (
	"testing"

	"kvdirect/internal/analysis/analysistest"
	"kvdirect/internal/analysis/atomiccounter"
)

func TestAtomicCounter(t *testing.T) {
	analysistest.Run(t, atomiccounter.Analyzer, analysistest.Package{
		Dir:  "testdata/counters",
		Path: "kvdirect/internal/analysis/atomiccounter/testdata/counters",
	})
}
