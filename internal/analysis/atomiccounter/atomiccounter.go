// Package atomiccounter detects struct fields accessed both through
// sync/atomic functions and through plain reads/writes in the same
// package.
//
// The stats layer's contract is that every counter is either a typed
// sync/atomic value (atomic.Uint64, whose API makes plain access
// impossible) or a plain integer accessed exclusively through
// atomic.AddUint64/LoadUint64. A field that is incremented atomically
// on the hot path but read plainly in a snapshot function is a data
// race the -race detector only catches if a test happens to hit the
// interleaving; this analyzer catches the pattern statically. The fix
// is to migrate the field to atomic.Uint64 (preferred in this
// codebase) or to make every access atomic.
package atomiccounter

import (
	"go/ast"
	"go/types"

	"kvdirect/internal/analysis"
)

// atomicFuncs maps sync/atomic function names that take a pointer to an
// integer field as their first argument.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true, "CompareAndSwapUintptr": true,
}

// Analyzer is the atomiccounter pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccounter",
	Doc:  "flag struct fields mixing sync/atomic and plain access (counter race invariant)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: find fields used via sync/atomic, remembering the exact
	// selector nodes that appear inside atomic calls.
	atomicFields := map[*types.Var]bool{}
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isAtomicFunc(pass.TypesInfo, call) {
			return true
		}
		unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if field := fieldOf(pass.TypesInfo, sel); field != nil {
			atomicFields[field] = true
			inAtomicCall[sel] = true
		}
		return true
	})
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other selector touching those fields is mixed access.
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || inAtomicCall[sel] {
			return true
		}
		field := fieldOf(pass.TypesInfo, sel)
		if field == nil || !atomicFields[field] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"field %s is accessed with sync/atomic elsewhere in this package; "+
				"this plain access races with it (migrate the field to atomic.%s)",
			field.Name(), suggestedAtomicType(field))
		return true
	})
	return nil
}

func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		atomicFuncs[fn.Name()]
}

func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// suggestedAtomicType names the typed atomic matching the field's type.
func suggestedAtomicType(field *types.Var) string {
	if b, ok := field.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Uint64"
}
