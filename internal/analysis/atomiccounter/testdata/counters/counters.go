// Fixture for mixed atomic/plain field access.
package counters

import "sync/atomic"

type stats struct {
	hits   uint64
	misses uint64
	plain  uint64
}

func (s *stats) record() {
	atomic.AddUint64(&s.hits, 1)
	atomic.AddUint64(&s.misses, 1)
}

func (s *stats) snapshot() (uint64, uint64) {
	h := atomic.LoadUint64(&s.hits) // atomic read of an atomic field: fine
	m := s.misses                   // want "plain access races.*atomic.Uint64"
	return h, m
}

func (s *stats) reset() {
	s.plain = 0 // never touched atomically anywhere: fine
}

type gauge struct{ level int64 }

func bump(g *gauge) {
	atomic.AddInt64(&g.level, 1)
	g.level++ // want "migrate the field to atomic.Int64"
}

func peek(g *gauge) int64 {
	return g.level //lint:allow atomiccounter -- fixture: suppression path
}
