// Fixture impersonating kvdirect/kvnet: real networking legitimately
// consults wall-clock time, so none of this may be flagged.
package kvnet

import (
	"math/rand"
	"time"
)

func realTimeIsFine() time.Time {
	_ = rand.Intn(10)
	time.Sleep(time.Millisecond)
	return time.Now()
}
