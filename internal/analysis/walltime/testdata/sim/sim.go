// Fixture impersonating a model package (kvdirect/internal/sim): every
// wall-clock read and global-rand draw here must be flagged.
package sim

import (
	"math/rand"
	"time"
)

func violations() {
	_ = time.Now()                                      // want "calls time.Now"
	time.Sleep(time.Millisecond)                        // want "calls time.Sleep"
	_ = time.Since(time.Time{})                         // want "calls time.Since"
	_ = rand.Intn(10)                                   // want "global math/rand source \\(rand.Intn\\)"
	rand.Shuffle(3, func(i, j int) {})                  // want "global math/rand source \\(rand.Shuffle\\)"
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeds math/rand from the wall clock"
}

func allowed() {
	r := rand.New(rand.NewSource(42)) // explicit seed: reproducible, fine
	_ = r.Intn(10)                    // method on a seeded *rand.Rand, not the global source
	d := 5 * time.Millisecond         // duration arithmetic never reads the clock
	_ = d
	_ = time.Unix(0, 0) // constructing a fixed instant is fine
	_ = time.Now()      //lint:allow walltime -- fixture: exercises the suppression path
}
