package walltime_test

import (
	"testing"

	"kvdirect/internal/analysis/analysistest"
	"kvdirect/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer,
		// A model package: every clock read and global-rand draw fires.
		analysistest.Package{Dir: "testdata/sim", Path: "kvdirect/internal/sim"},
		// A non-model package: identical code, zero diagnostics.
		analysistest.Package{Dir: "testdata/kvnet", Path: "kvdirect/kvnet"},
	)
}
