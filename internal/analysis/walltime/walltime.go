// Package walltime bans wall-clock time and the global math/rand source
// inside the simulation's model packages.
//
// The performance model's credibility rests on determinism: given one
// seed and one operation sequence, a run must reproduce bit-for-bit —
// that is what makes the paper's figures regenerable and the chaos
// harness debuggable. A single time.Now or global rand.Intn smuggled
// into a model package silently breaks that. Real-time use belongs in
// the outer layers (kvnet, cmd/*, experiments harnesses), which are not
// audited.
package walltime

import (
	"go/ast"
	"go/types"

	"kvdirect/internal/analysis"
)

// ModelPackages are the audited package paths: everything that feeds
// the performance model's accounting. kvnet (real networking), cmd/*
// and the experiment drivers legitimately consult wall-clock time and
// are deliberately absent.
var ModelPackages = map[string]bool{
	"kvdirect/internal/memory":   true,
	"kvdirect/internal/nicdram":  true,
	"kvdirect/internal/pcie":     true,
	"kvdirect/internal/model":    true,
	"kvdirect/internal/sim":      true,
	"kvdirect/internal/syssim":   true,
	"kvdirect/internal/core":     true,
	"kvdirect/internal/dispatch": true,
	"kvdirect/internal/ooo":      true,
	"kvdirect/internal/ordered":  true,
}

// bannedTime are time package functions that read or wait on the wall
// clock. Constructors like time.Duration arithmetic are fine.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// globalRand are math/rand package-level functions that consume the
// process-global source. Explicitly seeded *rand.Rand values (via
// rand.New(rand.NewSource(seed))) remain allowed.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time and global math/rand in model packages (determinism invariant)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !ModelPackages[pass.Pkg.Path()] {
		return nil
	}
	// handled marks inner time.Now calls already reported as part of a
	// seed-from-clock pattern, so they are not double-reported.
	handled := map[*ast.CallExpr]bool{}

	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Pattern with a mechanical fix: rand.NewSource(<clock expr>) —
		// seeding from the clock. Suggest a fixed literal seed.
		if analysis.IsPkgFunc(pass.TypesInfo, call, "math/rand", "NewSource") && len(call.Args) == 1 {
			if clock := findTimeCall(pass.TypesInfo, call.Args[0]); clock != nil {
				handled[clock] = true
				pass.Report(analysis.Diagnostic{
					Pos: call.Args[0].Pos(),
					End: call.Args[0].End(),
					Message: "model package seeds math/rand from the wall clock; " +
						"use an explicit seed so runs are reproducible",
					SuggestedFixes: []analysis.SuggestedFix{{
						Message: "replace clock-derived seed with the constant 1",
						TextEdits: []analysis.TextEdit{{
							Pos: call.Args[0].Pos(), End: call.Args[0].End(),
							NewText: []byte("1"),
						}},
					}},
				})
				return true
			}
		}
		if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] && !isMethod(fn) && !handled[call] {
					pass.Reportf(call.Pos(),
						"model package calls time.%s; model code must not consult wall-clock time",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRand[fn.Name()] && !isMethod(fn) {
					pass.Reportf(call.Pos(),
						"model package uses the global math/rand source (rand.%s); "+
							"draw from an explicitly seeded *rand.Rand instead",
						fn.Name())
				}
			}
		}
		return true
	})
	return nil
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// findTimeCall returns the first banned time package call inside expr
// (e.g. the time.Now() in time.Now().UnixNano()), or nil.
func findTimeCall(info *types.Info, expr ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
			!isMethod(fn) && bannedTime[fn.Name()] {
			found = call
			return false
		}
		return true
	})
	return found
}
