package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestAllowDirectiveParsing(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
	}{
		{"//lint:allow walltime", []string{"walltime"}},
		{"// lint:allow walltime -- seeding the demo RNG", []string{"walltime"}},
		{"//lint:allow statuserr,walltime", []string{"statuserr", "walltime"}},
		{"//lint:allow all", []string{"all"}},
		{"// lint:allowance is not a directive", nil},
		{"// a comment mentioning lint:allow mid-text", nil},
		{"//lint:allow", nil}, // no names: malformed, ignored
	}
	for _, c := range cases {
		m := allowRe.FindStringSubmatch(c.comment)
		if c.names == nil {
			if m != nil {
				t.Errorf("%q: matched %q, want no match", c.comment, m[1])
			}
			continue
		}
		if m == nil {
			t.Errorf("%q: no match, want names %v", c.comment, c.names)
			continue
		}
		got := m[1]
		want := ""
		for i, n := range c.names {
			if i > 0 {
				want += ","
			}
			want += n
		}
		if got != want {
			t.Errorf("%q: names %q, want %q", c.comment, got, want)
		}
	}
}

func TestAllowSetMatch(t *testing.T) {
	s := allowSet{
		"f.go": {
			10: {"walltime"},
			20: {"all"},
		},
	}
	at := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	if !s.match("walltime", at(10)) {
		t.Error("same-line directive did not suppress")
	}
	if !s.match("walltime", at(11)) {
		t.Error("line-above directive did not suppress")
	}
	if s.match("walltime", at(12)) {
		t.Error("directive leaked two lines down")
	}
	if s.match("statuserr", at(10)) {
		t.Error("directive suppressed a different analyzer")
	}
	if !s.match("statuserr", at(20)) {
		t.Error("'all' did not suppress")
	}
	if s.match("walltime", token.Position{Filename: "other.go", Line: 10}) {
		t.Error("directive leaked across files")
	}
}

func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fix.go")
	src := []byte("seed := time.Now().UnixNano()\nother := rand.Intn(9)\n")
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file := fset.AddFile(path, -1, len(src))
	file.SetLinesForContent(src)
	edit := func(start, end int, text string) Finding {
		return Finding{
			Fset: fset,
			Diagnostic: Diagnostic{
				SuggestedFixes: []SuggestedFix{{TextEdits: []TextEdit{{
					Pos: file.Pos(start), End: file.Pos(end), NewText: []byte(text),
				}}}},
			},
		}
	}
	// Two edits in one file, given in left-to-right order; the applier
	// must handle them right-to-left so offsets stay valid. The third
	// finding has no fix and must be ignored.
	findings := []Finding{
		edit(8, 29, "1"),  // time.Now().UnixNano() -> 1
		edit(39, 51, "7"), // rand.Intn(9) -> 7
		{Fset: fset},
	}
	n, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("applied %d edits, want 2", n)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "seed := 1\nother := 7\n"
	if string(got) != want {
		t.Errorf("after fixes:\n%q\nwant:\n%q", got, want)
	}
}
