package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllowDirectiveParsing(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
	}{
		{"//lint:allow walltime", []string{"walltime"}},
		{"// lint:allow walltime -- seeding the demo RNG", []string{"walltime"}},
		{"//lint:allow statuserr,walltime", []string{"statuserr", "walltime"}},
		{"//lint:allow all", []string{"all"}},
		{"// lint:allowance is not a directive", nil},
		{"// a comment mentioning lint:allow mid-text", nil},
		{"//lint:allow", nil}, // no names: malformed, ignored
	}
	for _, c := range cases {
		m := allowRe.FindStringSubmatch(c.comment)
		if c.names == nil {
			if m != nil {
				t.Errorf("%q: matched %q, want no match", c.comment, m[1])
			}
			continue
		}
		if m == nil {
			t.Errorf("%q: no match, want names %v", c.comment, c.names)
			continue
		}
		got := m[1]
		want := strings.Join(c.names, ",")
		if got != want {
			t.Errorf("%q: names %q, want %q", c.comment, got, want)
		}
	}
}

func TestAllowSetMatch(t *testing.T) {
	d1 := &directive{file: "f.go", line: 10, names: []string{"walltime"}, used: map[string]bool{}}
	d2 := &directive{file: "f.go", line: 20, names: []string{"all"}, used: map[string]bool{}}
	s := &allowSet{
		directives: []*directive{d1, d2},
		byLine: map[string]map[int][]*directive{
			"f.go": {10: {d1}, 20: {d2}},
		},
	}
	at := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	if !s.match("walltime", at(10)) {
		t.Error("same-line directive did not suppress")
	}
	if !s.match("walltime", at(11)) {
		t.Error("line-above directive did not suppress")
	}
	if s.match("walltime", at(12)) {
		t.Error("directive leaked two lines down")
	}
	if s.match("statuserr", at(10)) {
		t.Error("directive suppressed a different analyzer")
	}
	if !s.match("statuserr", at(20)) {
		t.Error("'all' did not suppress")
	}
	if s.match("walltime", token.Position{Filename: "other.go", Line: 10}) {
		t.Error("directive leaked across files")
	}
	if !d1.used["walltime"] {
		t.Error("suppression was not recorded against the directive")
	}
	if !d2.used["all"] {
		t.Error("'all' suppression was not recorded against the directive")
	}
}

// loadTestUnit writes the sources (name -> content) into a temp dir and
// loads them as one fixture package.
func loadTestUnit(t *testing.T, files map[string]string) *Unit {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	u, err := LoadFixture(dir, "kvdirect/internal/analysis/testunit")
	if err != nil {
		t.Fatalf("loading test unit: %v", err)
	}
	return u
}

// TestRunOrdering locks in the diagnostic sort contract — (file, line,
// column, analyzer) — so multi-analyzer CI output diffs stay stable no
// matter the registration order.
func TestRunOrdering(t *testing.T) {
	u := loadTestUnit(t, map[string]string{
		"a.go": "package testunit\n\nfunc A() {}\n",
		"b.go": "package testunit\n\nfunc B() {}\n",
	})
	reportAll := func(p *Pass) error {
		for _, f := range p.Files {
			p.Reportf(f.Package, "hit from %s", p.Analyzer.Name)
		}
		return nil
	}
	// Registered deliberately out of alphabetical order: the sort, not
	// the registration order, must decide ties at one position.
	zeta := &Analyzer{Name: "zeta", Doc: "test", Run: reportAll}
	alpha := &Analyzer{Name: "alpha", Doc: "test", Run: reportAll}
	findings, err := Run([]*Analyzer{zeta, alpha}, []*Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Fatalf("got %d findings, want 4", len(findings))
	}
	type key struct{ file, analyzer string }
	var got []key
	for _, f := range findings {
		got = append(got, key{filepath.Base(f.Position.Filename), f.Analyzer.Name})
	}
	want := []key{
		{"a.go", "alpha"}, {"a.go", "zeta"},
		{"b.go", "alpha"}, {"b.go", "zeta"},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d = %v, want %v (full order: %v)", i, got[i], want[i], got)
		}
	}
}

// noiseAt returns an analyzer that reports one diagnostic on each line
// of the file whose number is in lines.
func noiseAt(name string, lines ...int) *Analyzer {
	return &Analyzer{Name: name, Doc: "test", Run: func(p *Pass) error {
		for _, f := range p.Files {
			tf := p.Fset.File(f.Pos())
			for _, line := range lines {
				p.Reportf(tf.LineStart(line), "noise")
			}
		}
		return nil
	}}
}

func TestStaleAllowReporting(t *testing.T) {
	u := loadTestUnit(t, map[string]string{
		"p.go": `package testunit

func F() {
	_ = 1 //lint:allow fake -- this one is exercised
	_ = 2 //lint:allow fake -- stale: fake reports nothing here
	_ = 3 //lint:allow other -- other is not in this run
}
`,
	})
	findings, err := Run([]*Analyzer{noiseAt("fake", 4)}, []*Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the one stale directive: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != StaleAllow {
		t.Errorf("finding attributed to %s, want staleallow", f.Analyzer.Name)
	}
	if f.Position.Line != 5 {
		t.Errorf("stale directive reported at line %d, want 5", f.Position.Line)
	}
	if !strings.Contains(f.Diagnostic.Message, "fake") {
		t.Errorf("message %q does not name the stale analyzer", f.Diagnostic.Message)
	}

	// -fix deletes the stale directive and only it.
	if n, err := ApplyFixes(findings); err != nil || n != 1 {
		t.Fatalf("ApplyFixes = %d, %v; want 1, nil", n, err)
	}
	src, err := os.ReadFile(f.Position.Filename)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "stale: fake reports nothing") {
		t.Error("stale directive survived -fix")
	}
	if !strings.Contains(string(src), "this one is exercised") {
		t.Error("-fix deleted a live directive")
	}
	if !strings.Contains(string(src), "other is not in this run") {
		t.Error("-fix deleted a directive for an analyzer outside the run")
	}
}

func TestStaleAllowPartialNames(t *testing.T) {
	u := loadTestUnit(t, map[string]string{
		"p.go": `package testunit

func F() {
	_ = 1 //lint:allow fake,dead -- fake fires, dead does not
}
`,
	})
	findings, err := Run([]*Analyzer{noiseAt("fake", 4), noiseAt("dead")}, []*Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	msg := findings[0].Diagnostic.Message
	if !strings.Contains(msg, "dead") || strings.Contains(msg, "fake,") {
		t.Errorf("stale message %q should name only the dead analyzer", msg)
	}
	if n, err := ApplyFixes(findings); err != nil || n != 1 {
		t.Fatalf("ApplyFixes = %d, %v; want 1, nil", n, err)
	}
	src, err := os.ReadFile(findings[0].Position.Filename)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "//lint:allow fake -- fake fires, dead does not") {
		t.Errorf("partial fix did not keep the live name: %s", src)
	}
}

func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fix.go")
	src := []byte("seed := time.Now().UnixNano()\nother := rand.Intn(9)\n")
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file := fset.AddFile(path, -1, len(src))
	file.SetLinesForContent(src)
	edit := func(start, end int, text string) Finding {
		return Finding{
			Fset: fset,
			Diagnostic: Diagnostic{
				SuggestedFixes: []SuggestedFix{{TextEdits: []TextEdit{{
					Pos: file.Pos(start), End: file.Pos(end), NewText: []byte(text),
				}}}},
			},
		}
	}
	// Two edits in one file, given in left-to-right order; the applier
	// must handle them right-to-left so offsets stay valid. The third
	// finding has no fix and must be ignored.
	findings := []Finding{
		edit(8, 29, "1"),  // time.Now().UnixNano() -> 1
		edit(39, 51, "7"), // rand.Intn(9) -> 7
		{Fset: fset},
	}
	n, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("applied %d edits, want 2", n)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "seed := 1\nother := 7\n"
	if string(got) != want {
		t.Errorf("after fixes:\n%q\nwant:\n%q", got, want)
	}
}
