package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadFixture parses every .go file in dir and type-checks the result
// as a package with the given import path. It is the loader behind
// analysistest: fixtures may impersonate real package paths (so
// path-scoped analyzers fire) and may import real module or standard
// library packages, which are resolved from build-cache export data.
func LoadFixture(dir, importPath string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	imports := map[string]bool{}
	var fileNames []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fileNames = append(fileNames, e.Name())
	}
	sort.Strings(fileNames)
	for _, name := range fileNames {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, name) // typeCheck joins relative names with dir
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil {
				imports[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exports, err := listExports(dir, paths...)
	if err != nil {
		return nil, err
	}
	imp := newCachedImporter(fset, exports)
	u, err := typeCheck(fset, imp, importPath, dir, names)
	if err != nil {
		return nil, err
	}
	return u, nil
}
