// Fixture for hotalloc negatives: allocation-free hot paths stay
// silent, and unannotated functions may allocate freely.
package cold

import "fmt"

type counter struct {
	buckets [64]uint64
	n       uint64
}

//kvd:hotpath
func (c *counter) observe(v uint64) {
	idx := v & 63
	c.buckets[idx]++
	c.n++
}

//kvd:hotpath
func (c *counter) total() uint64 {
	var sum uint64
	for _, b := range c.buckets { // array range: no iterator allocation
		sum += b
	}
	return sum
}

//kvd:hotpath
func (c *counter) pick(flag bool) uint64 {
	// Pointer-shaped and boolean arguments do not box.
	use(c)
	use(flag)
	use(nil)
	return c.n
}

func use(v interface{}) { _ = v }

// report is unannotated: every allocation below is out of scope.
func (c *counter) report() string {
	m := map[string]uint64{"n": c.n}
	parts := make([]string, 0, len(m))
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	return fmt.Sprint(parts)
}

//kvd:hotpath
func (c *counter) chain() uint64 {
	return c.total() // calls a clean hot function: no summary finding
}
