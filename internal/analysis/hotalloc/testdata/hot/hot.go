// Fixture for //kvd:hotpath allocation detection.
package hot

import "fmt"

type entry struct {
	key []byte
	val []byte
}

type table struct {
	slots []entry
	stats map[string]uint64
}

func sink(v interface{}) { _ = v }

//kvd:hotpath
func (t *table) lookup(key []byte) []byte {
	for i := range t.slots {
		if string(t.slots[i].key) == string(key) { // want "conversion to string copies the bytes" "conversion to string copies the bytes"
			return t.slots[i].val
		}
	}
	e := &entry{key: key} // want "address of composite literal escapes to the heap"
	_ = e
	buf := make([]byte, 8)    // want "make allocates"
	buf = append(buf, key...) // want "append may grow and reallocate its backing array"
	_ = buf
	p := new(entry) // want "new allocates"
	_ = p
	m := map[string]int{} // want "map literal allocates"
	_ = m
	for k := range t.stats { // want "map iteration allocates its iterator"
		_ = k
	}
	fmt.Sprintf("key=%x", key) // want "hot path allocates: fmt.Sprintf allocates its formatted output"
	sink(42)                   // this literal is a constant: no boxing report
	n := len(key)
	sink(n) // want "argument boxes a int into an interface parameter"
	cb := func() { t.slots = nil } // want "function literal allocates a closure"
	_ = cb
	go t.compact() // want "go statement allocates a goroutine"
	return nil
}

// grow allocates; it is not annotated, so its body stays silent but
// hot-path callers see it through the transitive summary.
func (t *table) grow() {
	t.slots = append(t.slots, entry{})
}

//kvd:hotpath
func (t *table) insert(key, val []byte) {
	t.grow() // want "call to table.grow allocates \\(append may grow and reallocate its backing array\\)"
}

// compact is unannotated: nothing in here is reported.
func (t *table) compact() {
	b := make([]byte, 0, 64)
	_ = fmt.Sprintf("%d", len(b))
}

//kvd:hotpath
func (t *table) allowedAlloc() *entry {
	return &entry{} //lint:allow hotalloc -- fixture: deliberate per-op allocation, documented
}
