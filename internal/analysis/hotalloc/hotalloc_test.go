package hotalloc_test

import (
	"testing"

	"kvdirect/internal/analysis/analysistest"
	"kvdirect/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer,
		// Annotated functions with every flagged allocation shape.
		analysistest.Package{Dir: "testdata/hot", Path: "kvdirect/internal/hotfix"},
		// Allocation-free hot paths and unannotated allocators: silent.
		analysistest.Package{Dir: "testdata/cold", Path: "kvdirect/internal/coldfix"},
	)
}
