// Package hotalloc flags heap allocations reachable from functions
// annotated `//kvd:hotpath`.
//
// KV-Direct's performance claim rests on the per-operation path doing a
// bounded number of memory accesses and no incidental heap work: the
// paper's NIC pipeline has no allocator to fall back on, and the
// reproduction's benchmarks assert 0 allocs/op for the telemetry-off
// paths. An allocation that creeps into Apply, the serve loop, or a
// telemetry fast path is a silent throughput regression the compiler
// happily accepts. Annotating a function with a `//kvd:hotpath` doc
// directive declares "this function stays off the allocator"; the
// analyzer then flags allocation sites inside it and calls to
// same-package functions that allocate transitively.
//
// Flagged sites: taking the address of a composite literal, new, make,
// append (growth reallocates), map composite literals, conversions
// between string and []byte/[]rune, fmt.* calls, function literals
// (closure allocation), go statements, iterating a map (the hidden
// iterator), boxing a concrete value into an interface parameter, and
// calls to same-package functions whose bodies allocate. Deliberate
// allocations — a sampled tracer span, a fault-path error value — are
// documented in place with //lint:allow hotalloc and a reason.
//
// The analyzer is site-syntactic, not an escape analysis: it
// over-approximates (a non-escaping make may be stack-allocated) in
// exchange for being readable, deterministic, and dependency-free. The
// benchmark suite remains the ground truth; the annotation keeps the
// ground truth from drifting.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kvdirect/internal/analysis"
)

// Directive is the doc-comment tag that marks a function as a hot path.
const Directive = "kvd:hotpath"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocations reachable from //kvd:hotpath functions (0 allocs/op invariant)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)

	// Transitive "what does calling this allocate" summaries for every
	// declared function, so a hot function's call into a same-package
	// helper is flagged at the call site.
	local := map[*types.Func]map[string]bool{}
	for fn, decl := range g.Decls {
		set := map[string]bool{}
		sites(pass.TypesInfo, decl.Body, func(_ token.Pos, what string) {
			set[what] = true
		})
		local[fn] = set
	}
	summary := analysis.PropagateSets(g, local)

	for _, fn := range g.SortedFuncs() {
		decl := g.Decls[fn]
		if !analysis.HasDirective(decl.Doc, Directive) {
			continue
		}
		sites(pass.TypesInfo, decl.Body, func(pos token.Pos, what string) {
			pass.Reportf(pos, "hot path allocates: %s (hoist it off the per-op path, or //lint:allow hotalloc with a reason)", what)
		})
		// Same-package calls with allocating summaries.
		classify(decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			if _, declared := g.Decls[callee]; !declared {
				return
			}
			if len(summary[callee]) == 0 {
				return
			}
			pass.Reportf(call.Pos(), "hot path allocates: call to %s allocates (%s)",
				analysis.FuncName(callee), reasonList(summary[callee]))
		})
	}
	return nil
}

// reasonList renders a summary set compactly, capped at three reasons.
func reasonList(set map[string]bool) string {
	reasons := make([]string, 0, len(set))
	for r := range set {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	if len(reasons) > 3 {
		reasons = append(reasons[:3], "...")
	}
	return strings.Join(reasons, "; ")
}

// classify visits root skipping nested function literal bodies and go
// statement calls — their cost is attributed to the literal / statement
// itself, which sites reports as a single allocation.
func classify(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// sites walks body and emits every syntactic allocation site.
func sites(info *types.Info, body *ast.BlockStmt, emit func(token.Pos, string)) {
	classifyEmit := func(n ast.Node) {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					emit(n.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					emit(n.Pos(), "map literal allocates")
				}
			}
		case *ast.FuncLit:
			emit(n.Pos(), "function literal allocates a closure")
		case *ast.GoStmt:
			emit(n.Pos(), "go statement allocates a goroutine")
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					emit(n.Pos(), "map iteration allocates its iterator")
				}
			}
		case *ast.CallExpr:
			callSites(info, n, emit)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			classifyEmit(n)
			return false // the literal's body runs on its invoker's stack
		case *ast.GoStmt:
			classifyEmit(n)
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if m != nil {
						classifyEmit(m)
					}
					return true
				})
			}
			return false
		}
		if n != nil {
			classifyEmit(n)
		}
		return true
	})
}

// callSites emits the allocations implied by one call expression:
// builtins, conversions, fmt, and interface boxing of arguments.
func callSites(info *types.Info, call *ast.CallExpr, emit func(token.Pos, string)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "new":
				emit(call.Pos(), "new allocates")
			case "make":
				emit(call.Pos(), "make allocates")
			case "append":
				emit(call.Pos(), "append may grow and reallocate its backing array")
			}
			return
		}
	}
	// Conversions that copy: string <-> []byte/[]rune.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := info.TypeOf(call.Args[0])
		if from != nil {
			switch {
			case isByteOrRuneSlice(to):
				if isString(from.Underlying()) {
					emit(call.Pos(), "conversion from string copies into a fresh slice")
				}
			case isString(to):
				if isByteOrRuneSlice(from.Underlying()) {
					emit(call.Pos(), "conversion to string copies the bytes")
				}
			}
		}
		return
	}
	// fmt formats into fresh heap buffers, boxes every operand.
	if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		emit(call.Pos(), "fmt."+fn.Name()+" allocates its formatted output")
		return
	}
	// Interface boxing of concrete arguments.
	sig, ok := typeOfFun(info, call).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i, call.Ellipsis.IsValid())
		if param == nil || !types.IsInterface(param) {
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || at.Value != nil { // constants are interned or cheap
			continue
		}
		if boxes(at.Type) {
			emit(arg.Pos(), "argument boxes a "+at.Type.String()+" into an interface parameter")
		}
	}
}

func typeOfFun(info *types.Info, call *ast.CallExpr) types.Type {
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

// paramAt resolves the i-th argument's parameter type, unrolling
// variadics; a `f(xs...)` spread passes the slice through unboxed.
func paramAt(sig *types.Signature, i int, spread bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if spread {
			return nil
		}
		last := sig.Params().At(n - 1).Type()
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// boxes reports whether storing a value of concrete type t in an
// interface heap-allocates. Pointer-shaped values (pointers, channels,
// maps, funcs, unsafe pointers) fit in the interface word; booleans and
// nil-able things stay out of scope to keep the signal clean.
func boxes(t types.Type) bool {
	if types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.Bool, types.UntypedBool, types.UntypedNil, types.Invalid:
			return false
		}
		return true
	case *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
