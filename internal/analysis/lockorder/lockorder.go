// Package lockorder audits the replication and network layers' mutex
// discipline: it builds a per-package lock-acquisition graph and flags
// (1) cyclic acquisition orders — the classic AB/BA deadlock — and
// (2) potentially unbounded blocking operations performed while a lock
// is held: network I/O, channel sends/receives, bare selects, waits,
// and store-wide callbacks of the Store.Dump class.
//
// The invariant comes straight from the failure mode that motivated it:
// kvrepl once held a replica's mutex across a multi-megabyte Store.Dump
// while the lease heartbeat needed the same lock, so a slow snapshot
// failed over a healthy primary. "Reliable Replication Protocols on
// SmartNICs"-style interleavings are exactly where offload protocols
// die; a linter that refuses lock-held blocking keeps the next such bug
// out of the tree. Blocking under a lock that is deliberate (e.g. a
// consistent dump that must freeze the store) is documented in place
// with //lint:allow lockorder and a reason.
//
// The analysis is intra-package and flow-approximate: it tracks
// Lock/Unlock pairs linearly through each function (restoring state
// across early-returning branches), propagates "acquires" and "blocks"
// summaries through the static same-package call graph, and treats lock
// identity at the granularity of the declared field or variable (two
// instances of one struct share a lock name — which is what an
// acquisition *order* is about). Function literals are analyzed as
// independent bodies: a closure runs on its invoker's stack, not its
// definer's.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kvdirect/internal/analysis"
)

// AuditedPackages scopes the analyzer to the lock-heavy protocol
// layers. Model packages are single-goroutine by construction and the
// cmd/ binaries hold no locks worth ordering.
var AuditedPackages = map[string]bool{
	"kvdirect/kvrepl":           true,
	"kvdirect/kvnet":            true,
	"kvdirect/internal/repllog": true,
}

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flag cyclic lock-acquisition orders and blocking operations performed under a lock (replication-liveness invariant)",
	Run:  run,
}

// lockKey identifies a lock at declaration granularity: the struct
// field or variable holding the sync.Mutex/RWMutex.
type lockKey = *types.Var

// edge is one observed acquired-while-holding pair.
type edge struct {
	pos      token.Pos
	from, to string
}

type pkgState struct {
	pass  *analysis.Pass
	graph *analysis.CallGraph

	// Transitive summaries per declared function.
	acquires map[*types.Func]map[lockKey]bool
	blocks   map[*types.Func]map[string]bool

	names map[lockKey]string
	edges map[lockKey]map[lockKey]edge
}

func run(pass *analysis.Pass) error {
	if !AuditedPackages[pass.Pkg.Path()] {
		return nil
	}
	st := &pkgState{
		pass:  pass,
		graph: analysis.BuildCallGraph(pass),
		names: map[lockKey]string{},
		edges: map[lockKey]map[lockKey]edge{},
	}

	// Pass 1: local summaries, closed over the call graph.
	localAcq := map[*types.Func]map[lockKey]bool{}
	localBlk := map[*types.Func]map[string]bool{}
	for fn, decl := range st.graph.Decls {
		acq, blk := st.localSummary(decl.Body)
		localAcq[fn] = acq
		localBlk[fn] = blk
	}
	st.acquires = analysis.PropagateSets(st.graph, localAcq)
	st.blocks = analysis.PropagateSets(st.graph, localBlk)

	// Pass 2: walk each function (and each function literal as its own
	// body) tracking held locks, recording edges and reporting lock-held
	// blocking.
	for _, fn := range st.graph.SortedFuncs() {
		st.walkBody(st.graph.Decls[fn].Body)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				st.walkBody(lit.Body)
			}
			return true
		})
	}

	st.reportCycles()
	return nil
}

// localSummary collects the locks a body acquires and the blocking
// operations it performs, excluding nested function literals.
func (st *pkgState) localSummary(body *ast.BlockStmt) (map[lockKey]bool, map[string]bool) {
	acq := map[lockKey]bool{}
	blk := map[string]bool{}
	classify(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if v, _, kind := st.lockTarget(n); kind == opLock {
				acq[v] = true
			} else if why := st.blockingCall(n); why != "" {
				blk[why] = true
			}
		case *ast.SendStmt:
			blk["channel send"] = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blk["channel receive"] = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				blk["select"] = true
			}
		case *ast.RangeStmt:
			if st.isChanType(n.X) {
				blk["channel receive"] = true
			}
		}
	})
	return acq, blk
}

// classify visits every node of root, skipping the bodies of nested
// function literals (a closure runs on its invoker's stack), functions
// launched by go statements (they block their own goroutine), and the
// comm clauses of select statements (a comm only executes once the
// select chose it; the select as a whole is the blocking decision
// point, classified separately). Select case bodies are still visited.
func classify(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			fn(n)
			for _, c := range n.Body.List {
				for _, s := range c.(*ast.CommClause).Body {
					classify(s, fn)
				}
			}
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

const (
	opNone = iota
	opLock
	opUnlock
)

// lockTarget classifies call as a Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and resolves the lock's identity.
func (st *pkgState) lockTarget(call *ast.CallExpr) (lockKey, string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", opNone
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return nil, "", opNone
	}
	fn := analysis.CalleeFunc(st.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", opNone
	}
	v, name := st.resolveLockExpr(sel.X)
	if v == nil {
		return nil, "", opNone
	}
	if st.names[v] == "" {
		st.names[v] = name
	}
	return v, st.names[v], kind
}

// resolveLockExpr resolves the mutex-valued expression to its declared
// variable and a display name ("Replica.mu" for fields, the identifier
// for variables).
func (st *pkgState) resolveLockExpr(e ast.Expr) (lockKey, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := st.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v, e.Name
		}
	case *ast.SelectorExpr:
		if s, ok := st.pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			if v == nil {
				return nil, ""
			}
			name := v.Name()
			if recv := namedOf(s.Recv()); recv != nil {
				name = recv.Obj().Name() + "." + name
			}
			return v, name
		}
	}
	return nil, ""
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// slowStoreCallbacks are whole-store operations whose duration scales
// with the keyspace: holding a mutex across one stalls every other
// path needing that lock (the pre-PR-6 lease-lapse bug).
var slowStoreCallbacks = map[string]bool{"Dump": true, "Load": true, "Scrub": true}

// blockingCall classifies calls into external code that can block
// unboundedly; returns a short description or "".
func (st *pkgState) blockingCall(call *ast.CallExpr) string {
	info := st.pass.TypesInfo
	for _, name := range []string{"Dial", "DialTimeout", "Listen"} {
		if analysis.IsPkgFunc(info, call, "net", name) {
			return "net." + name
		}
	}
	for _, name := range []string{"ReadFull", "ReadAll", "Copy", "CopyN"} {
		if analysis.IsPkgFunc(info, call, "io", name) {
			return "io." + name
		}
	}
	if analysis.IsPkgFunc(info, call, "time", "Sleep") {
		return "time.Sleep"
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	recv := namedOf(sig.Recv().Type())
	recvName := ""
	if recv != nil {
		recvName = recv.Obj().Name()
	}
	switch fn.Pkg().Path() {
	case "net":
		switch fn.Name() {
		case "Read", "Write", "Accept":
			return "network I/O (" + recvName + "." + fn.Name() + ")"
		}
	case "bufio":
		switch fn.Name() {
		case "Read", "ReadByte", "ReadRune", "ReadString", "ReadBytes", "ReadSlice", "Peek", "Flush":
			return "buffered stream read/flush (bufio." + recvName + "." + fn.Name() + ")"
		}
	case "sync":
		if fn.Name() == "Wait" && (recvName == "WaitGroup" || recvName == "Cond") {
			return "sync." + recvName + ".Wait"
		}
	case "kvdirect/internal/core":
		if recvName == "Store" && slowStoreCallbacks[fn.Name()] {
			return "store-wide callback (Store." + fn.Name() + ")"
		}
	}
	return ""
}

// isChanType reports whether e's static type is a channel.
func (st *pkgState) isChanType(e ast.Expr) bool {
	tv, ok := st.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// ---- held-lock walk ----

type heldLock struct {
	v    lockKey
	name string
	pos  token.Pos
}

type walker struct {
	st   *pkgState
	held []heldLock
}

func (st *pkgState) walkBody(body *ast.BlockStmt) {
	w := &walker{st: st}
	w.stmts(body.List)
}

func (w *walker) holding(v lockKey) bool {
	for _, h := range w.held {
		if h.v == v {
			return true
		}
	}
	return false
}

func (w *walker) release(v lockKey) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].v == v {
			w.held = append(w.held[:i:i], w.held[i+1:]...)
			return
		}
	}
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// stmt advances the held-lock state through one statement, scanning its
// expressions for lock operations and blocking constructs.
func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scan(s.Cond)
		w.branch(s.Body)
		if s.Else != nil {
			w.branch(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.scan(s.Cond)
		}
		w.branch(s.Body)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		if w.st.isChanType(s.X) {
			w.blockingOp(s.Pos(), "channel receive (range)")
		}
		w.scan(s.X)
		w.branch(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.scan(s.Tag)
		}
		for _, c := range s.Body.List {
			w.branch(&ast.BlockStmt{List: c.(*ast.CaseClause).Body})
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			w.branch(&ast.BlockStmt{List: c.(*ast.CaseClause).Body})
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.blockingOp(s.Pos(), "select")
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.branch(&ast.BlockStmt{List: cc.Body})
		}
	case *ast.GoStmt:
		// The goroutine's body blocks its own stack; launching is free.
		// Arguments evaluated now are still scanned.
		for _, arg := range s.Call.Args {
			w.scan(arg)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end, which
		// the linear walk models by simply not releasing it. Other
		// deferred work runs during unwinding and is out of scope.
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	default:
		w.scan(s)
	}
}

// branch walks a conditional body with the current held set, restoring
// it afterwards when the branch cannot fall through (early return /
// goto-like exits would otherwise leak their lock state into the
// straight-line path).
func (w *walker) branch(body ast.Stmt) {
	snapshot := append([]heldLock(nil), w.held...)
	w.stmt(body)
	if terminates(body) {
		w.held = snapshot
	}
}

// terminates reports whether the statement (or the last statement of a
// block) definitely leaves the enclosing function or loop.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	case *ast.BlockStmt:
		if n := len(s.List); n > 0 {
			return terminates(s.List[n-1])
		}
	}
	return false
}

// scan processes one straight-line statement or expression: lock
// transitions, direct blocking constructs, and calls whose summaries
// acquire or block.
func (w *walker) scan(n ast.Node) {
	classify(n, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n)
		case *ast.SendStmt:
			w.blockingOp(n.Arrow, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blockingOp(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				w.blockingOp(n.Pos(), "select")
			}
		}
	})
}

func (w *walker) call(call *ast.CallExpr) {
	st := w.st
	if v, name, kind := st.lockTarget(call); kind != opNone {
		switch kind {
		case opLock:
			if w.holding(v) {
				st.pass.Reportf(call.Pos(),
					"%s is acquired while already held (recursive acquisition deadlocks on the same instance)", name)
				return
			}
			for _, h := range w.held {
				w.addEdge(h, v, name, call.Pos())
			}
			w.held = append(w.held, heldLock{v: v, name: name, pos: call.Pos()})
		case opUnlock:
			w.release(v)
		}
		return
	}
	if len(w.held) == 0 {
		return
	}
	if why := st.blockingCall(call); why != "" {
		w.blockingOp(call.Pos(), why)
		return
	}
	// Same-package callee: bring in its summary.
	fn := analysis.CalleeFunc(st.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if _, ok := st.graph.Decls[fn]; !ok {
		return
	}
	for v := range st.acquires[fn] {
		if w.holding(v) {
			st.pass.Reportf(call.Pos(),
				"call to %s re-acquires %s, which is already held here (deadlock)",
				analysis.FuncName(fn), st.names[v])
			continue
		}
		for _, h := range w.held {
			w.addEdge(h, v, st.names[v], call.Pos())
		}
	}
	if len(st.blocks[fn]) > 0 {
		reasons := make([]string, 0, len(st.blocks[fn]))
		for r := range st.blocks[fn] {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		innermost := w.held[len(w.held)-1]
		st.pass.Reportf(call.Pos(),
			"call to %s may block (%s) while %s is held; move the call outside the critical section",
			analysis.FuncName(fn), strings.Join(reasons, ", "), innermost.name)
	}
}

func (w *walker) blockingOp(pos token.Pos, why string) {
	if len(w.held) == 0 {
		return
	}
	innermost := w.held[len(w.held)-1]
	w.st.pass.Reportf(pos,
		"blocking operation (%s) while %s is held; move it outside the critical section",
		why, innermost.name)
}

func (w *walker) addEdge(from heldLock, to lockKey, toName string, pos token.Pos) {
	if from.v == to {
		return
	}
	m := w.st.edges[from.v]
	if m == nil {
		m = map[lockKey]edge{}
		w.st.edges[from.v] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = edge{pos: pos, from: from.name, to: toName}
	}
}

// reportCycles finds cycles in the acquired-while-holding graph and
// reports each once, at its lexicographically first edge.
func (st *pkgState) reportCycles() {
	// Deterministic node order.
	nodes := make([]lockKey, 0, len(st.edges))
	for v := range st.edges {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return st.names[nodes[i]] < st.names[nodes[j]] })

	reported := map[string]bool{}
	var path []lockKey
	onPath := map[lockKey]bool{}
	var dfs func(v lockKey)
	dfs = func(v lockKey) {
		path = append(path, v)
		onPath[v] = true
		nexts := make([]lockKey, 0, len(st.edges[v]))
		for n := range st.edges[v] {
			nexts = append(nexts, n)
		}
		sort.Slice(nexts, func(i, j int) bool { return st.names[nexts[i]] < st.names[nexts[j]] })
		for _, n := range nexts {
			if onPath[n] {
				st.reportCycle(append(cycleFrom(path, n), n), reported)
				continue
			}
			dfs(n)
		}
		onPath[v] = false
		path = path[:len(path)-1]
	}
	for _, v := range nodes {
		dfs(v)
	}
}

// cycleFrom extracts the path suffix beginning at node n.
func cycleFrom(path []lockKey, n lockKey) []lockKey {
	for i, v := range path {
		if v == n {
			return append([]lockKey(nil), path[i:]...)
		}
	}
	return nil
}

func (st *pkgState) reportCycle(cycle []lockKey, reported map[string]bool) {
	if len(cycle) < 2 {
		return
	}
	// Canonicalize: rotate so the smallest name leads (the closing
	// duplicate is dropped and re-added).
	ring := cycle[:len(cycle)-1]
	min := 0
	for i := range ring {
		if st.names[ring[i]] < st.names[ring[min]] {
			min = i
		}
	}
	rot := append(append([]lockKey(nil), ring[min:]...), ring[:min]...)
	parts := make([]string, 0, len(rot)+1)
	for _, v := range rot {
		parts = append(parts, st.names[v])
	}
	parts = append(parts, st.names[rot[0]])
	key := strings.Join(parts, "->")
	if reported[key] {
		return
	}
	reported[key] = true
	first := st.edges[rot[0]][rot[1]]
	st.pass.Reportf(first.pos,
		"lock acquisition cycle %s (deadlock risk); acquire these locks in one global order",
		strings.Join(parts, " -> "))
}
