// Fixture under a path outside AuditedPackages: the same violations the
// repl fixture flags must stay silent here — the analyzer is scoped to
// the lock-heavy protocol layers.
package unscoped

import (
	"sync"
	"time"
)

type widget struct {
	mu sync.Mutex
	ch chan int
}

func (w *widget) blockUnderLock() {
	w.mu.Lock()
	w.ch <- 1                    // out of scope: no diagnostic
	time.Sleep(time.Millisecond) // out of scope: no diagnostic
	w.mu.Unlock()
}
