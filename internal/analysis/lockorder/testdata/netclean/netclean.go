// Fixture impersonating kvdirect/kvnet: disciplined locking that must
// produce zero lockorder diagnostics.
package netclean

import (
	"bytes"
	"sync"
	"time"
)

type server struct {
	mu      sync.Mutex
	statsMu sync.Mutex
	queue   chan []byte
	conns   int
	drops   int
}

// snapshotThenSend copies under the lock and blocks only after the
// unlock: the pattern the analyzer is steering everything toward.
func (s *server) snapshotThenSend() {
	s.mu.Lock()
	n := s.conns
	s.mu.Unlock()
	s.queue <- []byte{byte(n)} // blocking after unlock: fine
}

// tryDrain uses a select with a default: non-blocking by construction,
// even under the lock.
func (s *server) tryDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case b := <-s.queue:
		s.conns += len(b)
	default:
		s.drops++
	}
}

// orderedLocks always acquires mu before statsMu: a consistent order
// builds edges but no cycle.
func (s *server) orderedLocks() {
	s.mu.Lock()
	s.statsMu.Lock()
	s.drops++
	s.statsMu.Unlock()
	s.mu.Unlock()
}

func (s *server) orderedAgain() int {
	s.mu.Lock()
	s.statsMu.Lock()
	n := s.conns + s.drops
	s.statsMu.Unlock()
	s.mu.Unlock()
	return n
}

// earlyReturn releases the lock on the error path; the fall-through
// path must not inherit the branch's lock state.
func (s *server) earlyReturn(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errFailed
	}
	s.conns++
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // lock released on every path: fine
	return nil
}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }

// spawnWorker launches a goroutine under the lock: the goroutine blocks
// its own stack, not the critical section.
func (s *server) spawnWorker() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		for b := range s.queue {
			_ = b
		}
	}()
	s.conns++
}

// buffered writes to an in-memory buffer under the lock: bytes.Buffer
// is not a blocking sink.
func (s *server) buffered() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	buf.WriteString("stats")
	return buf.Bytes()
}
