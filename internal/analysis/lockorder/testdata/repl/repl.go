// Fixture impersonating kvdirect/kvrepl: lock-held blocking operations
// and cyclic acquisition orders that lockorder must flag.
package repl

import (
	"bytes"
	"sync"
	"time"

	"kvdirect"
)

// replica mirrors the shape of kvrepl.Replica closely enough to
// reproduce the pre-PR-6 lease-lapse bug: the snapshot path held r.mu
// across a full store dump while the heartbeat path needed the same
// lock, so a multi-megabyte dump starved the heartbeat and failed over
// a healthy primary.
type replica struct {
	mu    sync.Mutex
	seq   uint64
	store *kvdirect.Store
	ready chan struct{}
	acks  chan uint64
}

// sendSnapshot is the pre-PR-6 dump-under-mu heartbeat pattern.
func (r *replica) sendSnapshot() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var buf bytes.Buffer
	_, err := r.store.Dump(&buf) // want "blocking operation \\(store-wide callback \\(Store.Dump\\)\\) while replica.mu is held"
	return buf.Bytes(), err
}

// heartbeat needs r.mu too — with sendSnapshot holding it across the
// dump, the lease lapses. The heartbeat itself is clean.
func (r *replica) heartbeat() uint64 {
	r.mu.Lock()
	beat := r.seq
	r.mu.Unlock()
	return beat
}

func (r *replica) notify() {
	r.mu.Lock()
	r.acks <- r.seq // want "blocking operation \\(channel send\\) while replica.mu is held"
	r.mu.Unlock()
}

func (r *replica) await() {
	r.mu.Lock()
	<-r.ready // want "blocking operation \\(channel receive\\) while replica.mu is held"
	r.mu.Unlock()
}

func (r *replica) throttle() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking operation \\(time.Sleep\\) while replica.mu is held"
	r.mu.Unlock()
}

// waitPeer blocks on its own; calling it under the lock must be
// reported at the call site through the transitive summary.
func (r *replica) waitPeer() {
	<-r.ready
}

func (r *replica) resync() {
	r.mu.Lock()
	r.waitPeer() // want "call to replica.waitPeer may block \\(channel receive\\) while replica.mu is held"
	r.mu.Unlock()
}

// lockedBump acquires r.mu itself; calling it with r.mu already held
// self-deadlocks.
func (r *replica) lockedBump() {
	r.mu.Lock()
	r.seq++
	r.mu.Unlock()
}

func (r *replica) doubleLock() {
	r.mu.Lock()
	r.lockedBump() // want "call to replica.lockedBump re-acquires replica.mu, which is already held here \\(deadlock\\)"
	r.mu.Unlock()
}

func (r *replica) recursive() {
	r.mu.Lock()
	r.mu.Lock() // want "replica.mu is acquired while already held \\(recursive acquisition deadlocks on the same instance\\)"
	r.mu.Unlock()
	r.mu.Unlock()
}

// pair holds two locks acquired in both orders: the classic AB/BA
// deadlock the acquisition graph must close into a cycle.
type pair struct {
	amu sync.Mutex
	bmu sync.Mutex
	a   int
	b   int
}

func (p *pair) sumAB() int {
	p.amu.Lock()
	p.bmu.Lock() // want "lock acquisition cycle pair.amu -> pair.bmu -> pair.amu \\(deadlock risk\\)"
	s := p.a + p.b
	p.bmu.Unlock()
	p.amu.Unlock()
	return s
}

func (p *pair) sumBA() int {
	p.bmu.Lock()
	p.amu.Lock()
	s := p.a + p.b
	p.amu.Unlock()
	p.bmu.Unlock()
	return s
}

// frozenDump documents a deliberate lock-held dump: the suppression
// path every real exemption uses.
func (r *replica) frozenDump() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	var buf bytes.Buffer
	r.store.Dump(&buf) //lint:allow lockorder,statuserr -- fixture: deliberate frozen snapshot
	return buf.Bytes()
}
