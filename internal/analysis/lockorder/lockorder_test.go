package lockorder_test

import (
	"testing"

	"kvdirect/internal/analysis/analysistest"
	"kvdirect/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer,
		// Audited package: lock-held blocking (including the pre-PR-6
		// dump-under-mu heartbeat pattern) and an AB/BA cycle all fire.
		analysistest.Package{Dir: "testdata/repl", Path: "kvdirect/kvrepl"},
		// Audited package, disciplined locking: zero diagnostics.
		analysistest.Package{Dir: "testdata/netclean", Path: "kvdirect/kvnet"},
		// Non-audited package with the same violations: scope gate holds.
		analysistest.Package{Dir: "testdata/unscoped", Path: "kvdirect/internal/unscoped"},
	)
}
