// Fixture exercising fault-point name resolution against the real
// internal/fault registry (imported live by the analyzer).
package faultuse

import "kvdirect/internal/stats"

func record(c *stats.Counters, dynamic string) {
	c.Add("fault.host_bitflip", 1)            // registered point: fine
	_ = c.Get("fault.net_reset")              // registered point: fine
	c.Add("fault.host_bitflp", 1)             // want "not a registered fault point.*did you mean \"fault.host_bitflip\""
	_ = c.Get("fault.nonexistent_chaos_mode") // want "not a registered fault point"
	c.Counter("fault.pcie_stal").Add(1)       // want "did you mean \"fault.pcie_stall\""
	c.Add("ops.get", 1)                       // different namespace: not ours to police
	c.Add(dynamic, 1)                         // dynamic name: cannot resolve statically
	c.Add("fault."+dynamic, 1)                // non-constant: likewise skipped
	c.Add("fault.made_up_name", 1)            //lint:allow faultpoint -- fixture: suppression path
}
