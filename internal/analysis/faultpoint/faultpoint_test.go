package faultpoint_test

import (
	"testing"

	"kvdirect/internal/analysis/analysistest"
	"kvdirect/internal/analysis/faultpoint"
)

func TestFaultpoint(t *testing.T) {
	analysistest.Run(t, faultpoint.Analyzer, analysistest.Package{
		Dir:  "testdata/faultuse",
		Path: "kvdirect/internal/analysis/faultpoint/testdata/faultuse",
	})
}

// TestKnownNamesNonEmpty guards the live link to the registry: if
// internal/fault ever stops exporting its point set, the analyzer would
// silently flag every name.
func TestKnownNamesNonEmpty(t *testing.T) {
	names := faultpoint.KnownNames()
	if len(names) == 0 {
		t.Fatal("fault registry reports no points")
	}
	for _, n := range names {
		if len(n) <= len(faultpoint.Prefix) {
			t.Errorf("degenerate registered name %q", n)
		}
	}
}
