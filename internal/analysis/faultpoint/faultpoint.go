// Package faultpoint validates "fault."-prefixed counter names against
// the internal/fault registry.
//
// Fault-injection coverage is observed exclusively through named
// counters ("fault.<point>") in stats.Counters registries. A typo in
// such a name — in an assertion, a health check, or a dashboard query —
// does not fail to compile; it reads a permanently-zero counter and
// silently reports "no faults", which is precisely the failure mode a
// chaos harness exists to prevent. This analyzer resolves every
// constant "fault."-prefixed name passed to a stats.Counters method
// against the registry's declared point set, importing the registry
// itself so the set can never drift from the code.
package faultpoint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"sort"
	"strings"

	"kvdirect/internal/analysis"
	"kvdirect/internal/fault"
)

// Prefix is the counter-name namespace the fault registry owns.
const Prefix = "fault."

// KnownNames returns the full counter names the registry declares,
// sorted, derived live from internal/fault.
func KnownNames() []string {
	var names []string
	for _, p := range fault.Points() {
		names = append(names, Prefix+p.String())
	}
	sort.Strings(names)
	return names
}

// countersMethods are the stats.Counters methods taking a counter name.
var countersMethods = map[string]bool{"Counter": true, "Add": true, "Get": true}

// Analyzer is the faultpoint pass.
var Analyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc:  "verify fault.* counter names against the internal/fault registry (no silent chaos-coverage loss)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	known := map[string]bool{}
	for _, n := range KnownNames() {
		known[n] = true
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || !countersMethods[fn.Name()] {
			return true
		}
		recv := analysis.ReceiverNamed(fn)
		if recv == nil || recv.Obj().Pkg() == nil ||
			recv.Obj().Pkg().Path() != "kvdirect/internal/stats" ||
			recv.Obj().Name() != "Counters" {
			return true
		}
		arg := call.Args[0]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true // dynamic name, e.g. "fault." + p.String()
		}
		name := constant.StringVal(tv.Value)
		if !strings.HasPrefix(name, Prefix) || known[name] {
			return true
		}
		d := analysis.Diagnostic{
			Pos: arg.Pos(),
			End: arg.End(),
			Message: fmt.Sprintf(
				"%q is not a registered fault point; the counter will read zero forever", name),
		}
		if best, ok := closest(name, known); ok {
			d.Message += fmt.Sprintf(" (did you mean %q?)", best)
			// Only offer a mechanical rewrite when the argument is a
			// plain string literal we can replace in place.
			if lit, isLit := ast.Unparen(arg).(*ast.BasicLit); isLit {
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message: fmt.Sprintf("replace with %q", best),
					TextEdits: []analysis.TextEdit{{
						Pos: lit.Pos(), End: lit.End(),
						NewText: []byte(fmt.Sprintf("%q", best)),
					}},
				}}
			}
		}
		pass.Report(d)
		return true
	})
	return nil
}

// closest returns the known name with the smallest Levenshtein distance
// to name, if that distance is small enough to look like a typo.
func closest(name string, known map[string]bool) (string, bool) {
	best, bestDist := "", 4
	for k := range known {
		d := levenshtein(name, k)
		if d < bestDist || (d == bestDist && best != "" && k < best) {
			best, bestDist = k, d
		}
	}
	return best, best != ""
}

func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
