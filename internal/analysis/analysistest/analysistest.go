// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want` expectations, in the spirit
// of golang.org/x/tools/go/analysis/analysistest but built on the
// repository's own framework.
//
// A fixture is a directory of .go files forming one package. Each line
// that should trigger a diagnostic carries a trailing comment of the
// form
//
//	offending() // want "regexp"
//
// (multiple quoted regexps allowed, each matching one expected
// diagnostic on that line). Lines without a want comment must produce
// no diagnostics. Because fixtures run through the same directive
// filtering as kvdlint, a fixture line with `//lint:allow <name>` both
// exercises and documents the suppression path.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"kvdirect/internal/analysis"
)

// Package names one fixture: a directory and the import path the
// type-checker should assign it (letting fixtures impersonate model
// packages for path-scoped analyzers).
type Package struct {
	Dir  string
	Path string
}

// Run checks the analyzer against each fixture package.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...Package) {
	t.Helper()
	for _, p := range pkgs {
		p := p
		t.Run(strings.ReplaceAll(p.Path, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, a, p)
		})
	}
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	re  *regexp.Regexp
	hit bool
}

func runOne(t *testing.T, a *analysis.Analyzer, p Package) {
	t.Helper()
	u, err := analysis.LoadFixture(p.Dir, p.Path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", p.Dir, err)
	}

	// Collect want expectations keyed by file:line.
	wants := map[string][]*expectation{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
					text, err := unquoteLite(q[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, q[0], err)
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, text, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	findings, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Unit{u})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, p.Path, err)
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.hit && exp.re.MatchString(f.Diagnostic.Message) {
				exp.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Diagnostic.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.re)
			}
		}
	}
}

// unquoteLite handles the \" and \\ escapes allowed inside want
// patterns without disturbing regexp escapes like \d.
func unquoteLite(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
