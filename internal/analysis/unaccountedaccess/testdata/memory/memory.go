// Fixture impersonating kvdirect/internal/memory: a miniature of the
// real Memory type, with counted accessors and several cheats.
package memory

// Memory mimics the simulated host memory: a raw backing array that only
// the counted accessor layer may touch.
type Memory struct {
	data  []byte
	reads uint64
}

// Read is allowlisted: the raw slice below IS the accounting layer.
func (m *Memory) Read(addr, n int) []byte {
	m.reads++
	return m.data[addr : addr+n]
}

// Peek is the documented uncounted host-CPU-side accessor, also allowlisted.
func (m *Memory) Peek(addr int) byte {
	return m.data[addr]
}

// checksum cheats: it walks the array without going through Read.
func (m *Memory) checksum() byte {
	var sum byte
	for _, b := range m.data { // want "raw access to Memory.data"
		sum ^= b
	}
	return sum
}

func scrub(m *Memory) {
	m.data[0] = 0   // want "raw access to Memory.data"
	_ = m.data[1:3] // want "raw access to Memory.data"
}

func suppressed(m *Memory) byte {
	return m.data[0] //lint:allow unaccountedaccess -- fixture: suppression path
}

// scratch has a field of the same name on an untracked type; indexing it
// is nobody's business.
type scratch struct{ data []byte }

func (s *scratch) first() byte { return s.data[0] }
