// Fixture impersonating kvdirect/internal/nicdram: only lineData may
// window into the cache's backing array.
package nicdram

const LineBytes = 64

type Cache struct {
	data []byte
}

func (c *Cache) lineData(slot int) []byte {
	return c.data[slot*LineBytes : (slot+1)*LineBytes]
}

func (c *Cache) readByte(off int) byte {
	return c.data[off] // want "raw access to Cache.data"
}
