package unaccountedaccess_test

import (
	"testing"

	"kvdirect/internal/analysis/analysistest"
	"kvdirect/internal/analysis/unaccountedaccess"
)

func TestUnaccountedAccess(t *testing.T) {
	analysistest.Run(t, unaccountedaccess.Analyzer,
		analysistest.Package{Dir: "testdata/memory", Path: "kvdirect/internal/memory"},
		analysistest.Package{Dir: "testdata/nicdram", Path: "kvdirect/internal/nicdram"},
	)
}
