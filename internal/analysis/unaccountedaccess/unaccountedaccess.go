// Package unaccountedaccess keeps every touch of simulated memory
// inside the counted accessor layer.
//
// The whole point of the reproduction's memory model is that "memory
// accesses per KV operation" — the quantity behind the paper's Figure 6
// and the bottleneck arithmetic of §3 — is computed by counting calls
// through memory.Memory's Read/Write (DMA) and nicdram.Cache's line
// accessors. Code that indexes or slices the backing byte arrays
// directly performs a memory access the model never sees, quietly
// deflating the reported DMA counts. The backing fields are unexported,
// so the compiler already protects other packages; this analyzer closes
// the remaining hole — code (including test helpers) inside the owning
// packages themselves.
package unaccountedaccess

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"kvdirect/internal/analysis"
)

// accessors lists, per package path and backing field, the functions
// allowed to touch the raw array: the counted (or deliberately
// uncounted, host-CPU-side) accessor set.
var accessors = map[string]map[string]allowed{
	"kvdirect/internal/memory": {
		"data": {typeName: "Memory", funcs: map[string]bool{
			// Read/Write count DMA; Peek/Poke are the documented
			// host-CPU-side uncounted accessors.
			"Read": true, "Write": true, "Peek": true, "Poke": true,
		}},
	},
	"kvdirect/internal/nicdram": {
		"data": {typeName: "Cache", funcs: map[string]bool{
			// lineData is the single line-granularity window through
			// which all cache reads/writes flow (and are counted).
			"lineData": true,
		}},
	},
}

type allowed struct {
	typeName string
	funcs    map[string]bool
}

// Analyzer is the unaccountedaccess pass.
var Analyzer = &analysis.Analyzer{
	Name: "unaccountedaccess",
	Doc:  "forbid raw indexing of simulated-memory backing arrays outside the counted accessor layer",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	table := accessors[pass.Pkg.Path()]
	if table == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, table, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, table map[string]allowed, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var target ast.Expr
		switch n := n.(type) {
		case *ast.IndexExpr:
			target = n.X
		case *ast.SliceExpr:
			target = n.X
		case *ast.RangeStmt:
			target = n.X
		default:
			return true
		}
		sel, ok := ast.Unparen(target).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := fieldOf(pass.TypesInfo, sel)
		if field == nil {
			return true
		}
		al, tracked := table[field.Name()]
		if !tracked || !isFieldOf(field, pass.Pkg, al.typeName) {
			return true
		}
		if al.funcs[fd.Name.Name] && methodOn(pass.TypesInfo, fd, al.typeName) {
			return true // inside an allowlisted accessor
		}
		pass.Reportf(n.Pos(),
			"raw access to %s.%s bypasses the counted accessor layer (%s); "+
				"use the accessor methods so the DMA/line accounting stays authentic",
			al.typeName, field.Name(), accessorList(al))
		return true
	})
}

// fieldOf resolves sel to a struct field object, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isFieldOf reports whether field belongs to the named struct type in pkg.
func isFieldOf(field *types.Var, pkg *types.Package, typeName string) bool {
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == field {
			return true
		}
	}
	return false
}

// methodOn reports whether fd is declared as a method on the named type
// (value or pointer receiver).
func methodOn(info *types.Info, fd *ast.FuncDecl, typeName string) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	named := analysis.ReceiverNamed(fn)
	return named != nil && named.Obj().Name() == typeName
}

func accessorList(al allowed) string {
	keys := make([]string, 0, len(al.funcs))
	for k := range al.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "/")
}
