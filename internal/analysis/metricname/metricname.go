// Package metricname enforces the repository's metric naming
// convention on literal metric names.
//
// Every counter, gauge and histogram name follows `layer.noun[_unit]`:
// a layer prefix naming the subsystem that owns the metric (server,
// client, core, pcie, dram, dispatch, ecc, fault, repl, test), one dot,
// and a lowercase snake_case noun with an optional trailing unit
// (`_ns`, `_bytes`). One flat namespace spans the whole stack — a
// replica's registry mixes repl.lag with server.ops and dram.hits — so
// a name that free-rides outside the convention either collides with a
// neighbour or becomes unfindable on a dashboard. The analyzer checks
// every string literal passed as the name argument to the stats and
// telemetry registries; names built at runtime are out of scope.
package metricname

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"

	"kvdirect/internal/analysis"
)

// nameRe is `layer.noun[_unit]`: lowercase snake_case segments joined
// by exactly one dot.
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*\.[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// registryTypes are the receiver types whose string-typed first
// argument names a metric.
var registryTypes = map[string]bool{
	"kvdirect/internal/stats.Counters":     true,
	"kvdirect/internal/stats.Gauges":       true,
	"kvdirect/internal/stats.IntGauges":    true,
	"kvdirect/internal/telemetry.Registry": true,
}

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "enforce layer.noun[_unit] naming on literal metric names (one-namespace invariant)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isRegistryCall(pass.TypesInfo, call) {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind.String() != "STRING" {
			return true // runtime-built name: out of scope
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil || nameRe.MatchString(name) {
			return true
		}
		pass.Reportf(lit.Pos(),
			"metric name %q does not match layer.noun[_unit] "+
				"(lowercase snake_case segments joined by one dot, e.g. server.op_latency_ns)",
			name)
		return true
	})
	return nil
}

// isRegistryCall reports whether call is a method on one of the metric
// registries whose first parameter is the metric name.
func isRegistryCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() == 0 {
		return false
	}
	if b, ok := sig.Params().At(0).Type().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return registryTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}
