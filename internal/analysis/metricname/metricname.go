// Package metricname enforces the repository's metric naming
// convention on literal metric names.
//
// Every counter, gauge and histogram name follows `layer.noun[_unit]`:
// a layer prefix naming the subsystem that owns the metric (one of the
// knownLayers allow-list — server, client, core, repl, gw, trace,
// blackbox, ...), one dot, and a lowercase snake_case noun with an
// optional trailing unit (`_ns`, `_bytes`). One flat namespace spans
// the whole stack — a replica's registry mixes repl.lag with server.ops
// and dram.hits — so a name that free-rides outside the convention
// either collides with a neighbour or becomes unfindable on a
// dashboard, and a well-formed name under an unrecognized layer is a
// typo until the allow-list says otherwise. The analyzer checks every
// string literal passed as the name argument to the stats and telemetry
// registries; names built at runtime are out of scope.
package metricname

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"kvdirect/internal/analysis"
)

// nameRe is `layer.noun[_unit]`: lowercase snake_case segments joined
// by exactly one dot.
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*\.[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// knownLayers is the allow-list of layer prefixes. A well-formed name
// under an unknown layer is still a violation: layers are the
// dashboard's top-level grouping, and a typo'd prefix ("serve.ops")
// silently orphans its series. New subsystems add their layer here in
// the same PR that mints the first metric.
var knownLayers = map[string]bool{
	"server":   true, // kvnet server pipeline
	"client":   true, // kvnet client
	"sharded":  true, // kvnet sharded client
	"core":     true, // store/engine model
	"pcie":     true, // PCIe DMA model
	"dram":     true, // NIC DRAM cache model
	"dispatch": true, // load dispatcher
	"ordered":  true, // ordered secondary index
	"ecc":      true, // ECC/scrub model
	"fault":    true, // fault injection
	"repl":     true, // replication + coordinator
	"gw":       true, // memcache gateway
	"trace":    true, // distributed tracing
	"blackbox": true, // flight recorder
	"bench":    true, // benchmark harnesses
	"test":     true, // test-local fixtures
}

// layerList renders the allow-list for the diagnostic, sorted for
// deterministic output.
func layerList() string {
	layers := make([]string, 0, len(knownLayers))
	for l := range knownLayers {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	return strings.Join(layers, " ")
}

// registryTypes are the receiver types whose string-typed first
// argument names a metric.
var registryTypes = map[string]bool{
	"kvdirect/internal/stats.Counters":     true,
	"kvdirect/internal/stats.Gauges":       true,
	"kvdirect/internal/stats.IntGauges":    true,
	"kvdirect/internal/telemetry.Registry": true,
}

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "enforce layer.noun[_unit] naming on literal metric names (one-namespace invariant)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isRegistryCall(pass.TypesInfo, call) {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind.String() != "STRING" {
			return true // runtime-built name: out of scope
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !nameRe.MatchString(name) {
			pass.Reportf(lit.Pos(),
				"metric name %q does not match layer.noun[_unit] "+
					"(lowercase snake_case segments joined by one dot, e.g. server.op_latency_ns)",
				name)
			return true
		}
		if layer, _, ok := strings.Cut(name, "."); ok && !knownLayers[layer] {
			pass.Reportf(lit.Pos(),
				"metric name %q uses unknown layer %q (known: %s); add new layers to metricname.knownLayers",
				name, layer, layerList())
		}
		return true
	})
	return nil
}

// isRegistryCall reports whether call is a method on one of the metric
// registries whose first parameter is the metric name.
func isRegistryCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() == 0 {
		return false
	}
	if b, ok := sig.Params().At(0).Type().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return registryTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}
