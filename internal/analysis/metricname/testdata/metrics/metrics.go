// Fixture for metric name convention checks.
package metrics

import (
	"kvdirect/internal/stats"
	"kvdirect/internal/telemetry"
)

func record(c *stats.Counters, g *stats.Gauges, ig *stats.IntGauges, r *telemetry.Registry) {
	// Conforming names: layer.noun, optional snake_case and unit suffix.
	c.Add("server.ops", 1)
	g.Set("core.keys", 7)
	g.SetMax("repl.lag_max", 3)
	ig.Set("repl.lag", -2)
	r.Histogram("server.op_latency_ns").Observe(1)
	c.Add("dram.line_reads", 1)

	// The tracing PR's layers are in the allow-list.
	g.Set("trace.spans_published", 4)
	g.Set("blackbox.events_recorded", 2)
	g.Set("blackbox.dumps", 1)
	r.Histogram("gw.batch_latency_ns").Observe(1)

	// Violations.
	c.Add("ops", 1)              // want "does not match layer.noun"
	c.Add("server.Ops", 1)       // want "does not match layer.noun"
	g.Set("replLag", 0)          // want "does not match layer.noun"
	ig.Set("repl.lag.max", 0)    // want "does not match layer.noun"
	c.Add("server..ops", 1)      // want "does not match layer.noun"
	c.Add("server.ops-total", 1) // want "does not match layer.noun"
	c.Add("_server.ops", 1)      // want "does not match layer.noun"
	r.Histogram("latency")       // want "does not match layer.noun"
	c.Add("server.ops_", 1)      // want "does not match layer.noun"

	// Well-formed but under a layer the allow-list does not know.
	c.Add("serve.ops", 1)           // want "unknown layer"
	g.Set("tracing.spans", 0)       // want "unknown layer"
	r.Histogram("gateway.batch_ns") // want "unknown layer"

	// Runtime-built names are out of scope.
	name := "server." + suffix()
	c.Add(name, 1)

	// String first args on unrelated types are not metric names.
	other{}.Add("whatever", 1)
}

func suffix() string { return "ops" }

type other struct{}

func (other) Add(name string, v int) {}
