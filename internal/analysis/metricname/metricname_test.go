package metricname_test

import (
	"testing"

	"kvdirect/internal/analysis/analysistest"
	"kvdirect/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, metricname.Analyzer, analysistest.Package{
		Dir:  "testdata/metrics",
		Path: "kvdirect/internal/analysis/metricname/testdata/metrics",
	})
}
