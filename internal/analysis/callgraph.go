package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is the intra-package static call graph of one lint unit:
// every declared function or method, the AST body it was declared with,
// and the same-package functions it calls through statically resolvable
// call expressions. Dynamic calls (function-typed variables, interface
// method sets dispatched at runtime) are invisible by design — the
// analyzers built on top of this are advisory linters with a //lint:allow
// escape hatch, not verifiers, and a conservative graph keeps them quiet
// enough to stay enabled.
type CallGraph struct {
	// Decls maps each declared function object to its declaration.
	Decls map[*types.Func]*ast.FuncDecl

	// Callees maps a function to the distinct same-package declared
	// functions it calls synchronously, in source order of the first
	// call site. Functions launched by a `go` statement and calls made
	// inside nested function literals are excluded: a goroutine runs on
	// its own stack and a closure on its invoker's, so neither belongs
	// in the caller's synchronous summary. Analyzers that care about
	// those bodies walk them explicitly.
	Callees map[*types.Func][]*types.Func
}

// BuildCallGraph collects the unit's function declarations and resolves
// every call expression inside them to same-package callees.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Decls:   map[*types.Func]*ast.FuncDecl{},
		Callees: map[*types.Func][]*types.Func{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[fn] = fd
		}
	}
	for fn, fd := range g.Decls {
		seen := map[*types.Func]bool{}
		var walk func(n ast.Node)
		walk = func(root ast.Node) {
			ast.Inspect(root, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.GoStmt:
					// The launched call runs asynchronously, but its
					// arguments are evaluated on this stack right now.
					for _, arg := range n.Call.Args {
						walk(arg)
					}
					return false
				case *ast.CallExpr:
					callee := CalleeFunc(pass.TypesInfo, n)
					if callee == nil || seen[callee] {
						return true
					}
					if _, declared := g.Decls[callee]; !declared {
						return true
					}
					seen[callee] = true
					g.Callees[fn] = append(g.Callees[fn], callee)
				}
				return true
			})
		}
		walk(fd.Body)
	}
	return g
}

// PropagateSets closes the per-function sets in local over the call
// graph: the result for f is local(f) unioned with the result of every
// function f transitively calls. The input map is not modified.
func PropagateSets[E comparable](g *CallGraph, local map[*types.Func]map[E]bool) map[*types.Func]map[E]bool {
	out := map[*types.Func]map[E]bool{}
	for fn := range g.Decls {
		set := map[E]bool{}
		for e := range local[fn] {
			set[e] = true
		}
		out[fn] = set
	}
	// Fixed point: the graph is tiny (one package), so a simple
	// iterate-until-stable loop beats building SCCs.
	for changed := true; changed; {
		changed = false
		for fn := range g.Decls {
			set := out[fn]
			for _, callee := range g.Callees[fn] {
				for e := range out[callee] {
					if !set[e] {
						set[e] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}

// Reachable returns the functions reachable from the seed set through
// the call graph, seeds included.
func (g *CallGraph) Reachable(seeds []*types.Func) map[*types.Func]bool {
	reached := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reached[fn] {
			return
		}
		reached[fn] = true
		for _, callee := range g.Callees[fn] {
			visit(callee)
		}
	}
	for _, fn := range seeds {
		visit(fn)
	}
	return reached
}

// SortedFuncs returns the graph's functions ordered by declaration
// position, so analyzer passes that iterate the graph report
// deterministically.
func (g *CallGraph) SortedFuncs() []*types.Func {
	fns := make([]*types.Func, 0, len(g.Decls))
	for fn := range g.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return g.Decls[fns[i]].Pos() < g.Decls[fns[j]].Pos() })
	return fns
}

// HasDirective reports whether the comment group carries the given
// machine directive (e.g. tag "kvd:hotpath" matches a `//kvd:hotpath`
// line). Directives follow the Go convention: no space after //, the
// tag alone or followed by whitespace.
func HasDirective(doc *ast.CommentGroup, tag string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//"+tag)
		if ok && (text == "" || text[0] == ' ' || text[0] == '\t') {
			return true
		}
	}
	return false
}

// FuncName renders a function for diagnostics: "Recv.Method" for
// methods, the bare name otherwise.
func FuncName(fn *types.Func) string {
	if named := ReceiverNamed(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
