package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic attributed to its analyzer, after directive
// filtering, ready for printing or fixing.
type Finding struct {
	Analyzer   *Analyzer
	Position   token.Position
	Diagnostic Diagnostic
	Fset       *token.FileSet
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Diagnostic.Message, f.Analyzer.Name)
}

// StaleAllow is the runner's own pass: a `//lint:allow <name>` directive
// that suppressed nothing is dead weight — it documents an exemption
// that no longer exists and will silently swallow the next real finding
// at that site. The runner reports such directives after every analyzer
// in the run has had its chance to be suppressed; `kvdlint -fix` deletes
// the stale directive (or prunes the stale names from a multi-name one).
// Only names of analyzers that actually ran are judged, so running a
// subset of the suite (kvdlint -only, analysistest) never declares the
// other analyzers' directives stale.
var StaleAllow = &Analyzer{
	Name: "staleallow",
	Doc:  "flag //lint:allow directives that no longer suppress anything (dead exemptions)",
}

// Run applies every analyzer to every unit, returning the surviving
// findings sorted by position. Sites annotated with a matching
// `//lint:allow <name>` directive (same line or the line above) are
// dropped; directives that drop nothing are themselves reported under
// the staleallow pseudo-analyzer.
func Run(analyzers []*Analyzer, units []*Unit) ([]Finding, error) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var findings []Finding
	for _, u := range units {
		allowed := collectAllows(u)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				pos := u.Fset.Position(d.Pos)
				if allowed.match(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a, Position: pos, Diagnostic: d, Fset: u.Fset})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, u.ID, err)
			}
		}
		for _, d := range allowed.directives {
			stale := d.staleNames(ran)
			if len(stale) == 0 {
				continue
			}
			pos := u.Fset.Position(d.comment.Pos())
			findings = append(findings, Finding{
				Analyzer: StaleAllow,
				Position: pos,
				Fset:     u.Fset,
				Diagnostic: Diagnostic{
					Pos: d.comment.Pos(),
					End: d.comment.End(),
					Message: fmt.Sprintf("//lint:allow %s suppresses nothing here; delete the stale directive",
						strings.Join(stale, ",")),
					SuggestedFixes: []SuggestedFix{d.fix(stale)},
				},
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer.Name < findings[j].Analyzer.Name
	})
	return findings, nil
}

// allowRe matches `//lint:allow name1,name2 -- optional reason`.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_,]+)(\s|$|--)`)

// directive is one parsed //lint:allow comment with its usage record.
type directive struct {
	comment *ast.Comment
	file    string
	line    int
	names   []string
	used    map[string]bool // names that suppressed at least one diagnostic
}

// allowSet records a unit's //lint:allow directives, indexed by file and
// line for the suppression check.
type allowSet struct {
	directives []*directive
	byLine     map[string]map[int][]*directive
}

// collectAllows scans a unit's comments for //lint:allow directives.
func collectAllows(u *Unit) *allowSet {
	set := &allowSet{byLine: map[string]map[int][]*directive{}}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				d := &directive{
					comment: c,
					file:    pos.Filename,
					line:    pos.Line,
					names:   strings.Split(m[1], ","),
					used:    map[string]bool{},
				}
				set.directives = append(set.directives, d)
				lines := set.byLine[d.file]
				if lines == nil {
					lines = map[int][]*directive{}
					set.byLine[d.file] = lines
				}
				lines[d.line] = append(lines[d.line], d)
			}
		}
	}
	return set
}

// match reports whether analyzer name is allowed at pos — a directive on
// the same line (trailing comment) or the line directly above — and
// records the suppression against the directive.
func (s *allowSet) match(name string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			for _, n := range d.names {
				if n == name || n == "all" {
					d.used[n] = true
					return true
				}
			}
		}
	}
	return false
}

// staleNames returns the directive's names that suppressed nothing,
// restricted to analyzers that actually ran. An "all" directive is
// judged against the run as a whole: stale only when nothing at the site
// was suppressed at all.
func (d *directive) staleNames(ran map[string]bool) []string {
	var stale []string
	for _, n := range d.names {
		switch {
		case n == "all":
			if len(d.used) == 0 {
				stale = append(stale, n)
			}
		case ran[n] && !d.used[n]:
			stale = append(stale, n)
		}
	}
	return stale
}

// fix builds the suggested rewrite for a directive's stale names: drop
// the whole comment when every name is stale, otherwise rewrite the name
// list keeping the live ones (and the trailing reason).
func (d *directive) fix(stale []string) SuggestedFix {
	staleSet := map[string]bool{}
	for _, n := range stale {
		staleSet[n] = true
	}
	var live []string
	for _, n := range d.names {
		if !staleSet[n] {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return SuggestedFix{
			Message: "delete the stale //lint:allow directive",
			TextEdits: []TextEdit{{
				Pos: d.comment.Pos(), End: d.comment.End(), NewText: nil,
			}},
		}
	}
	// Splice the surviving names into the original comment text, keeping
	// the prefix style and the reason suffix.
	idx := allowRe.FindStringSubmatchIndex(d.comment.Text)
	text := d.comment.Text[:idx[2]] + strings.Join(live, ",") + d.comment.Text[idx[3]:]
	return SuggestedFix{
		Message: "drop the stale names from the //lint:allow directive",
		TextEdits: []TextEdit{{
			Pos: d.comment.Pos(), End: d.comment.End(), NewText: []byte(text),
		}},
	}
}

// ApplyFixes applies the first suggested fix of each finding to the
// source files on disk, returning how many edits were written. Findings
// without fixes are left alone. Overlapping edits in one file are
// applied right-to-left so earlier offsets stay valid.
func ApplyFixes(findings []Finding) (int, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, f := range findings {
		if len(f.Diagnostic.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.Diagnostic.SuggestedFixes[0].TextEdits {
			start := f.Fset.Position(te.Pos)
			end := f.Fset.Position(te.End)
			if start.Filename == "" || start.Filename != end.Filename {
				continue
			}
			perFile[start.Filename] = append(perFile[start.Filename],
				edit{start: start.Offset, end: end.Offset, text: te.NewText})
		}
	}
	applied := 0
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prevStart := len(src) + 1
		for _, e := range edits {
			if e.end > prevStart || e.end < e.start || e.end > len(src) {
				continue // overlapping or out-of-range edit: skip
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prevStart = e.start
			applied++
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
