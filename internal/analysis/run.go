package analysis

import (
	"fmt"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic attributed to its analyzer, after directive
// filtering, ready for printing or fixing.
type Finding struct {
	Analyzer   *Analyzer
	Position   token.Position
	Diagnostic Diagnostic
	Fset       *token.FileSet
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Diagnostic.Message, f.Analyzer.Name)
}

// Run applies every analyzer to every unit, returning the surviving
// findings sorted by position. Sites annotated with a matching
// `//lint:allow <name>` directive (same line or the line above) are
// dropped.
func Run(analyzers []*Analyzer, units []*Unit) ([]Finding, error) {
	var findings []Finding
	for _, u := range units {
		allowed := collectAllows(u)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				pos := u.Fset.Position(d.Pos)
				if allowed.match(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a, Position: pos, Diagnostic: d, Fset: u.Fset})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, u.ID, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer.Name < findings[j].Analyzer.Name
	})
	return findings, nil
}

// allowRe matches `//lint:allow name1,name2 -- optional reason`.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_,]+)(\s|$|--)`)

// allowSet records, per file and line, the analyzer names allowed there.
type allowSet map[string]map[int][]string

// collectAllows scans a unit's comments for //lint:allow directives.
func collectAllows(u *Unit) allowSet {
	set := allowSet{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				names := strings.Split(m[1], ",")
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return set
}

// match reports whether analyzer name is allowed at pos: a directive on
// the same line (trailing comment) or the line directly above.
func (s allowSet) match(name string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, n := range lines[line] {
			if n == name || n == "all" {
				return true
			}
		}
	}
	return false
}

// ApplyFixes applies the first suggested fix of each finding to the
// source files on disk, returning how many edits were written. Findings
// without fixes are left alone. Overlapping edits in one file are
// applied right-to-left so earlier offsets stay valid.
func ApplyFixes(findings []Finding) (int, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, f := range findings {
		if len(f.Diagnostic.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.Diagnostic.SuggestedFixes[0].TextEdits {
			start := f.Fset.Position(te.Pos)
			end := f.Fset.Position(te.End)
			if start.Filename == "" || start.Filename != end.Filename {
				continue
			}
			perFile[start.Filename] = append(perFile[start.Filename],
				edit{start: start.Offset, end: end.Offset, text: te.NewText})
		}
	}
	applied := 0
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prevStart := len(src) + 1
		for _, e := range edits {
			if e.end > prevStart || e.end < e.start || e.end > len(src) {
				continue // overlapping or out-of-range edit: skip
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prevStart = e.start
			applied++
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
