// Package gorolifetime flags `go` statements that launch goroutines
// with no visible tie-down.
//
// Every goroutine in a long-lived server needs an owner that can end
// it: a context, a stop channel, a WaitGroup the owner waits on, or a
// connection whose close unblocks it. A goroutine with none of these is
// unkillable — it leaks across reconfigurations, keeps failed replicas
// half-alive, and turns clean shutdown into a timeout. The replication
// layer's elastic membership (replicas join and leave at runtime) makes
// this a correctness property, not hygiene: an orphaned heartbeat loop
// from a demoted primary is exactly the split-brain ingredient epoch
// fencing exists to contain.
//
// The analyzer inspects the function a `go` statement launches — a
// function literal's body directly, a same-package function through the
// transitive call-graph summary — for any tie-down signal: channel
// sends/receives/ranges, select statements, references to a
// context.Context, sync.WaitGroup Done/Wait (or Cond.Wait), and method
// calls into net or bufio (a goroutine blocked on a connection dies
// with it). Goroutines whose target resolves outside the package are
// trusted — the callee's discipline is its own package's business.
// Deliberately unbounded goroutines are documented in place with
// //lint:allow gorolifetime and a reason.
package gorolifetime

import (
	"go/ast"
	"go/token"
	"go/types"

	"kvdirect/internal/analysis"
)

// Analyzer is the gorolifetime pass.
var Analyzer = &analysis.Analyzer{
	Name: "gorolifetime",
	Doc:  "flag go statements whose goroutine has no tie-down (context, stop channel, WaitGroup, or connection)",
	Run:  run,
}

const tied = "tied"

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)

	// Transitive tie-down summaries for declared functions.
	local := map[*types.Func]map[string]bool{}
	for fn, decl := range g.Decls {
		set := map[string]bool{}
		if tiedLocal(pass.TypesInfo, decl.Body) {
			set[tied] = true
		}
		local[fn] = set
	}
	summary := analysis.PropagateSets(g, local)

	pass.Inspect(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goTied(pass.TypesInfo, g, summary, gs.Call) {
			return true
		}
		pass.Reportf(gs.Pos(),
			"goroutine has no tie-down: nothing in it waits on a context, channel, WaitGroup, or connection, "+
				"so it can outlive its owner (bound its lifetime, or //lint:allow gorolifetime with a reason)")
		return true
	})
	return nil
}

// goTied decides whether the launched call has a visible tie-down.
func goTied(info *types.Info, g *analysis.CallGraph, summary map[*types.Func]map[string]bool, call *ast.CallExpr) bool {
	// Passing a context, channel, WaitGroup, or connection INTO the
	// goroutine counts: the owner handed it a leash.
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil && tiedType(t) {
			return true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return tiedLit(info, g, summary, fun)
	default:
		fn := analysis.CalleeFunc(info, call)
		if fn == nil {
			return true // dynamic target: trust it
		}
		if _, declared := g.Decls[fn]; !declared {
			return true // other package's function: its discipline, its audit
		}
		return summary[fn][tied]
	}
}

// tiedLit scans a launched function literal: its own body (nested
// literals included — an inner closure's channel op still runs on this
// goroutine unless launched again) plus the summaries of same-package
// functions it calls.
func tiedLit(info *types.Info, g *analysis.CallGraph, summary map[*types.Func]map[string]bool, lit *ast.FuncLit) bool {
	if tiedLocal(info, lit.Body) {
		return true
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.CalleeFunc(info, call); fn != nil {
			if _, declared := g.Decls[fn]; declared && summary[fn][tied] {
				found = true
			}
		}
		return true
	})
	return found
}

// tiedLocal reports whether the body itself contains a tie-down signal.
func tiedLocal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			// Referencing a context, channel, WaitGroup, or connection in
			// the body is the tie-down in the common case — e.g. an
			// http.Serve(ln, ...) goroutine dies when ln closes.
			if t := info.TypeOf(n); t != nil && tiedType(t) {
				found = true
			}
		case *ast.CallExpr:
			if tiedCall(info, n) {
				found = true
			}
		}
		return true
	})
	return found
}

// tiedCall classifies calls that bound a goroutine's lifetime.
func tiedCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	// A method named Wait is a bounded wait by Go convention —
	// sync.WaitGroup.Wait, sync.Cond.Wait, exec.Cmd.Wait, a migration
	// handle's Wait: the goroutine ends when the awaited work does.
	if fn.Name() == "Wait" {
		return true
	}
	recv := recvName(sig)
	switch fn.Pkg().Path() {
	case "sync":
		if recv == "WaitGroup" && fn.Name() == "Done" {
			return true
		}
	case "net", "bufio":
		// Blocked on (or feeding) a connection: closing it unblocks the
		// goroutine. Any method call into these packages counts.
		return true
	}
	return false
}

func recvName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// tiedType reports whether handing a value of type t to a goroutine
// constitutes a leash: contexts, channels, WaitGroups, connections.
func tiedType(t types.Type) bool {
	if isContext(t) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "sync.WaitGroup", "net.Conn", "net.Listener", "context.Context":
				return true
			}
		}
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// isContext matches context.Context (and named interfaces embedding it
// resolve through their own packages, which is out of scope on purpose).
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
