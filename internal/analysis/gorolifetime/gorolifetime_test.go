package gorolifetime_test

import (
	"testing"

	"kvdirect/internal/analysis/analysistest"
	"kvdirect/internal/analysis/gorolifetime"
)

func TestGorolifetime(t *testing.T) {
	analysistest.Run(t, gorolifetime.Analyzer,
		// Untied goroutines: every launch fires.
		analysistest.Package{Dir: "testdata/leaky", Path: "kvdirect/internal/leakyfix"},
		// Context / channel / WaitGroup / connection tie-downs: silent.
		analysistest.Package{Dir: "testdata/tied", Path: "kvdirect/internal/tiedfix"},
	)
}
