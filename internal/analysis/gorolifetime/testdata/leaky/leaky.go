// Fixture for goroutines launched with no tie-down.
package leaky

import "time"

type pump struct {
	n    uint64
	stop chan struct{}
}

func (p *pump) work() { p.n++ }

// spin loops forever with nothing an owner could use to end it.
func (p *pump) spin() {
	for {
		p.work()
		time.Sleep(time.Millisecond)
	}
}

func (p *pump) start() {
	go p.spin() // want "goroutine has no tie-down"
	go func() { // want "goroutine has no tie-down"
		for {
			p.work()
		}
	}()
	// Calling a helper that is itself untied does not help.
	go func() { // want "goroutine has no tie-down"
		p.spin()
	}()
}

// delayedLeak documents a deliberate fire-and-forget: the allow path.
func (p *pump) delayedLeak() {
	go p.spin() //lint:allow gorolifetime -- fixture: deliberate fire-and-forget, documented
}
