// Fixture for goroutines with a visible tie-down: zero diagnostics.
package tied

import (
	"bufio"
	"context"
	"net"
	"sync"
)

type worker struct {
	stop  chan struct{}
	tasks chan func()
	wg    sync.WaitGroup
	n     uint64
}

// loop selects on a stop channel.
func (w *worker) loop() {
	for {
		select {
		case <-w.stop:
			return
		case t := <-w.tasks:
			t()
		}
	}
}

func (w *worker) start(ctx context.Context, conn net.Conn) {
	go w.loop() // stop-channel select through the summary

	go func() { // direct channel range
		for t := range w.tasks {
			t()
		}
	}()

	w.wg.Add(1)
	go func() { // WaitGroup Done
		defer w.wg.Done()
		w.n++
	}()

	go func() { // context reference
		<-ctx.Done()
	}()

	go func() { // dies with the connection
		r := bufio.NewReader(conn)
		for {
			if _, err := r.ReadByte(); err != nil {
				return
			}
			w.n++
		}
	}()

	go serveConn(conn) // connection handed in as an argument

	var f func()
	f = w.bump
	go f() // dynamic target: trusted
}

func serveConn(c net.Conn) {
	buf := make([]byte, 1)
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

func (w *worker) bump() { w.n++ }
