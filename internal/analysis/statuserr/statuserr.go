// Package statuserr flags silently dropped error and wire.Response
// results.
//
// The Apply/DMA hot path reports failure in-band: core.Store.Apply
// converts uncorrectable memory faults into wire.Response values with
// StatusError, and the network/DMA layers return plain errors. A call
// site that invokes one of these for its side effect and discards the
// result throws away the only signal that the operation was served from
// damaged state — the exact "silent corruption" the store's no-silent-
// corruption contract exists to prevent. This analyzer flags statement
// calls (including `go` statements) whose results include an error or a
// wire.Response, and blank assignments (`_ = f()`, `_, _ = f()`) that
// discard such a result — including a discarded errors.Join, which
// silently swallows every operand error folded into it. The one blank
// assignment still accepted is `_ = x.Close()`: best-effort cleanup
// where the close error is documented as unreportable. Any other
// deliberate discard needs a `//lint:allow statuserr -- reason`, so the
// exemption carries its justification. `defer` cleanup calls follow the
// usual Go idiom and are skipped.
package statuserr

import (
	"go/ast"
	"go/types"

	"kvdirect/internal/analysis"
)

// ignoredPkgs are callee packages whose dropped errors are idiomatic
// noise rather than lost status (fmt's print family foremost).
var ignoredPkgs = map[string]bool{
	"fmt": true,
}

// ignoredRecvs are receiver types whose methods' error returns are
// documented to be always nil (writes to in-memory buffers, the
// seeded rand stream).
var ignoredRecvs = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"math/rand.Rand":  true,
	"hash.Hash":       true, // hash.Hash documents that Write never errors
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

// Analyzer is the statuserr pass.
var Analyzer = &analysis.Analyzer{
	Name: "statuserr",
	Doc:  "flag dropped error/StatusError results on Apply and DMA paths (no-silent-corruption invariant)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var call *ast.CallExpr
		blank := false
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.GoStmt:
			call = n.Call
		case *ast.DeferStmt:
			return false // defer f.Close() etc.: idiomatic, skip subtree
		case *ast.AssignStmt:
			// `_ = f()` / `_, _ = f()`: every result thrown away. A mixed
			// assignment (`v, _ := f()`) keeps at least one result live
			// and stays out of scope here.
			if len(n.Rhs) != 1 || !allBlank(n.Lhs) {
				return true
			}
			call, _ = ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			blank = true
		}
		if call == nil {
			return true
		}
		if ignored(pass.TypesInfo, call) {
			return true
		}
		if blank && isCloseMethod(pass.TypesInfo, call) {
			return true // `_ = x.Close()`: accepted best-effort cleanup
		}
		tv, ok := pass.TypesInfo.Types[call]
		if !ok {
			return true
		}
		if kind := droppedKind(tv.Type); kind != "" {
			how := "discarded"
			if blank {
				how = "discarded by blank assignment"
			}
			if analysis.IsPkgFunc(pass.TypesInfo, call, "errors", "Join") {
				pass.Reportf(call.Pos(),
					"joined error of errors.Join is %s; every operand error vanishes with it "+
						"(handle it, or //lint:allow statuserr with a reason)", how)
				return true
			}
			pass.Reportf(call.Pos(),
				"%s result of %s is %s; a failed operation would go unnoticed "+
					"(handle it, or //lint:allow statuserr with a reason)",
				kind, calleeName(pass.TypesInfo, call), how)
		}
		return true
	})
	return nil
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// isCloseMethod reports whether call invokes a method named Close — the
// `_ = x.Close()` best-effort-cleanup idiom this analyzer accepts.
func isCloseMethod(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Close" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// droppedKind classifies the call's result tuple: "error" if it yields
// an error, "wire.Response" if it yields a status-carrying Response,
// "" otherwise.
func droppedKind(t types.Type) string {
	if t == nil {
		return ""
	}
	results := []types.Type{t}
	if tuple, ok := t.(*types.Tuple); ok {
		results = results[:0]
		for i := 0; i < tuple.Len(); i++ {
			results = append(results, tuple.At(i).Type())
		}
	}
	for _, r := range results {
		if isErrorType(r) {
			return "error"
		}
		if named, ok := r.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Response" && obj.Pkg() != nil &&
				obj.Pkg().Path() == "kvdirect/internal/wire" {
				return "wire.Response"
			}
		}
	}
	return ""
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

func ignored(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false // dynamic call: judge by result type alone
	}
	if pkg := fn.Pkg(); pkg != nil && ignoredPkgs[pkg.Path()] {
		return true
	}
	if named := analysis.ReceiverNamed(fn); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil && ignoredRecvs[obj.Pkg().Path()+"."+obj.Name()] {
			return true
		}
	}
	// Interface methods resolve to their embedded declarer (hash.Hash's
	// Write is io.Writer's), so also judge the receiver expression's own
	// static type.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok {
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && ignoredRecvs[obj.Pkg().Path()+"."+obj.Name()] {
					return true
				}
			}
		}
	}
	return false
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		if named := analysis.ReceiverNamed(fn); named != nil {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
