// Fixture for dropped error / wire.Response results.
package hotpath

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"kvdirect/internal/wire"
)

func flush() error { return errors.New("boom") }

func apply() wire.Response { return wire.Response{} }

func pair() (int, error) { return 0, nil }

func touch() {}

type closer struct{}

func (closer) Close() error { return nil }

func drops() {
	flush()    // want "error result of flush is discarded"
	apply()    // want "wire.Response result of apply is discarded"
	pair()     // want "error result of pair is discarded"
	go flush() // want "error result of flush is discarded"
}

func blankDrops() {
	_ = flush()                    // want "error result of flush is discarded by blank assignment"
	_ = apply()                    // want "wire.Response result of apply is discarded by blank assignment"
	_, _ = pair()                  // want "error result of pair is discarded by blank assignment"
	errors.Join(flush(), flush())  // want "joined error of errors.Join is discarded"
	_ = errors.Join(flush(), nil)  // want "joined error of errors.Join is discarded by blank assignment"
	var c closer
	_ = c.Close() // best-effort cleanup: the accepted blank discard
}

func fine() {
	touch() // no results at all
	if err := flush(); err != nil {
		_ = err
	}
	v, _ := pair() // mixed assignment: a result stays live
	_ = v
	err := errors.Join(flush(), flush()) // joined error is kept
	_ = err
	defer flush()    // defer cleanup idiom: skipped
	fmt.Println("x") // fmt print family: ignored noise
	var b strings.Builder
	b.WriteString("x") // documented always-nil error: ignored
	h := fnv.New64a()
	_, _ = h.Write([]byte("x")) // hash.Hash documents Write never errors
	flush()            //lint:allow statuserr -- fixture: suppression path
	_ = flush()        //lint:allow statuserr -- fixture: blank-assign suppression path
}
