// Fixture for dropped error / wire.Response results.
package hotpath

import (
	"errors"
	"fmt"
	"strings"

	"kvdirect/internal/wire"
)

func flush() error { return errors.New("boom") }

func apply() wire.Response { return wire.Response{} }

func pair() (int, error) { return 0, nil }

func touch() {}

func drops() {
	flush()    // want "error result of flush is discarded"
	apply()    // want "wire.Response result of apply is discarded"
	pair()     // want "error result of pair is discarded"
	go flush() // want "error result of flush is discarded"
}

func fine() {
	touch()     // no results at all
	_ = flush() // explicit, greppable acknowledgment
	if err := flush(); err != nil {
		_ = err
	}
	defer flush()    // defer cleanup idiom: skipped
	fmt.Println("x") // fmt print family: ignored noise
	var b strings.Builder
	b.WriteString("x") // documented always-nil error: ignored
	flush()            //lint:allow statuserr -- fixture: suppression path
}
