package statuserr_test

import (
	"testing"

	"kvdirect/internal/analysis/analysistest"
	"kvdirect/internal/analysis/statuserr"
)

func TestStatusErr(t *testing.T) {
	analysistest.Run(t, statuserr.Analyzer, analysistest.Package{
		Dir:  "testdata/hotpath",
		Path: "kvdirect/internal/analysis/statuserr/testdata/hotpath",
	})
}
