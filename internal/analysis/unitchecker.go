package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
)

// vetConfig mirrors the JSON configuration file cmd/go hands a
// -vettool for each package unit (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredGoFiles            []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// jsonDiagnostic is one finding in the JSON shape `go vet -json`
// expects from a vet tool.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// RunUnitchecker executes the analyzers against one vet unit described
// by the cfg file and returns the process exit code: 0 on success (or
// when emitting JSON), 2 when findings were reported in plain mode.
func RunUnitchecker(analyzers []*Analyzer, cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvdlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "kvdlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts output: kvdlint carries no cross-package facts, but cmd/go
	// requires the vetx file to exist before it will cache the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "kvdlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	unit, err := typeCheck(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "kvdlint: %v\n", err)
		return 1
	}
	findings, err := Run(analyzers, []*Unit{unit})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvdlint: %v\n", err)
		return 1
	}
	if asJSON {
		byAnalyzer := map[string][]jsonDiagnostic{}
		for _, f := range findings {
			byAnalyzer[f.Analyzer.Name] = append(byAnalyzer[f.Analyzer.Name], jsonDiagnostic{
				Posn:    f.Position.String(),
				Message: f.Diagnostic.Message,
			})
		}
		out := map[string]map[string][]jsonDiagnostic{cfg.ImportPath: byAnalyzer}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "kvdlint: %v\n", err)
			return 1
		}
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Position, f.Diagnostic.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
