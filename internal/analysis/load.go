package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Unit is one type-checked lint unit: a package together with its
// in-package test files (matching what `go vet` checks). External test
// packages (package foo_test) form their own units.
type Unit struct {
	// ID is the go list identifier, e.g. "kvdirect/internal/fault
	// [kvdirect/internal/fault.test]" for a test-augmented variant.
	ID string
	// PkgPath is the plain import path analyzers see via Pkg.Path().
	PkgPath string
	Dir     string

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	ForTest    string
	GoFiles    []string
	Module     *struct{ Path string }
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir), then
// parses and type-checks each in-module package — preferring the
// test-augmented variant so _test.go files are linted too. Import
// resolution uses compiler export data from the build cache, so Load
// needs no network and no third-party loader.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-test", "-deps", "-export", "-json=ImportPath,Dir,Export,ForTest,GoFiles,Module,Incomplete,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}

	// Pick lint units: in-module packages only; where a test-augmented
	// variant "p [p.test]" exists, it replaces the plain "p".
	augmented := map[string]bool{} // plain paths having a test variant
	for _, p := range pkgs {
		if p.ForTest != "" && plainPath(p.ImportPath) == p.ForTest {
			augmented[p.ForTest] = true
		}
	}
	fset := token.NewFileSet()
	imp := newCachedImporter(fset, exports)
	var units []*Unit
	for _, p := range pkgs {
		if p.Module == nil || strings.HasSuffix(p.ImportPath, ".test") {
			continue // out-of-module dep or synthesized test main
		}
		if p.ForTest == "" && augmented[p.ImportPath] {
			continue // superseded by its test-augmented variant
		}
		if p.ForTest != "" {
			plain := plainPath(p.ImportPath)
			// Keep only a package's own test-augmented variant
			// ("p [p.test]") and its external test package
			// ("p_test [p.test]"). Variants recompiled for another
			// package's test binary ("p [q.test]", from test-dependency
			// cycles) duplicate the plain package.
			if plain != p.ForTest && plain != p.ForTest+"_test" {
				continue
			}
		}
		u, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// plainPath strips a test-variant suffix: "p [p.test]" -> "p".
func plainPath(id string) string {
	if i := strings.IndexByte(id, ' '); i >= 0 {
		return id[:i]
	}
	return id
}

// typeCheck parses files (paths relative to dir) and type-checks them as
// the package with the given go list ID.
func typeCheck(fset *token.FileSet, imp types.Importer, id, dir string, files []string) (*Unit, error) {
	var parsed []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	pkgPath := plainPath(id)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", id, err)
	}
	return &Unit{
		ID:        id,
		PkgPath:   plainPath(id),
		Dir:       dir,
		Fset:      fset,
		Files:     parsed,
		Pkg:       pkg,
		TypesInfo: info,
	}, nil
}

// cachedImporter resolves imports from gc export-data files, caching the
// resulting packages so units sharing dependencies type-check each one
// once.
type cachedImporter struct {
	mu    sync.Mutex // serializes Import (the gc importer is not concurrency-safe)
	under types.Importer

	expMu   sync.Mutex // guards exports; the lookup callback runs inside Import
	exports map[string]string
}

func newCachedImporter(fset *token.FileSet, exports map[string]string) *cachedImporter {
	ci := &cachedImporter{exports: exports}
	ci.under = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		ci.expMu.Lock()
		file, ok := ci.exports[path]
		ci.expMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ci
}

func (ci *cachedImporter) Import(path string) (*types.Package, error) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	return ci.under.Import(path)
}

// listExports runs `go list -deps -export` over the given import paths
// and returns path -> export-data file for every resolvable package.
func listExports(dir string, paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-deps", "-export", "-e", "-json=ImportPath,Export", "--"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
