package analysis

import (
	"go/types"
	"testing"
)

func TestCallGraphAndPropagation(t *testing.T) {
	u := loadTestUnit(t, map[string]string{
		"g.go": `package testunit

func leaf() {}

func mid() { leaf() }

//kvd:hotpath
func top() {
	mid()
	go spun()          // async: not a synchronous callee
	f := func() { leaf() } // closure body: not attributed to top
	f()
}

func spun() { leaf() }
`,
	})
	pass := &Pass{Fset: u.Fset, Files: u.Files, Pkg: u.Pkg, TypesInfo: u.TypesInfo}
	g := BuildCallGraph(pass)

	byName := map[string]*types.Func{}
	for fn := range g.Decls {
		byName[fn.Name()] = fn
	}
	for _, name := range []string{"leaf", "mid", "top", "spun"} {
		if byName[name] == nil {
			t.Fatalf("declared function %s missing from graph", name)
		}
	}
	callees := func(name string) map[string]bool {
		out := map[string]bool{}
		for _, c := range g.Callees[byName[name]] {
			out[c.Name()] = true
		}
		return out
	}
	if c := callees("top"); !c["mid"] || c["spun"] || c["leaf"] {
		t.Errorf("top callees = %v, want exactly {mid}: go targets and closure bodies excluded", c)
	}
	if c := callees("mid"); !c["leaf"] {
		t.Errorf("mid callees = %v, want leaf", c)
	}

	// Summaries seeded at the leaf must reach top transitively.
	local := map[*types.Func]map[string]bool{byName["leaf"]: {"allocates": true}}
	closed := PropagateSets(g, local)
	if !closed[byName["mid"]]["allocates"] {
		t.Error("leaf's summary did not propagate to mid")
	}
	if !closed[byName["top"]]["allocates"] {
		t.Error("leaf's summary did not propagate transitively to top")
	}
	if closed[byName["spun"]]["allocates"] != true {
		t.Error("spun calls leaf synchronously; summary should propagate")
	}

	if !HasDirective(g.Decls[byName["top"]].Doc, "kvd:hotpath") {
		t.Error("top's //kvd:hotpath directive not detected")
	}
	if HasDirective(g.Decls[byName["mid"]].Doc, "kvd:hotpath") {
		t.Error("mid has no directive; detected one anyway")
	}

	order := g.SortedFuncs()
	for i, want := range []string{"leaf", "mid", "top", "spun"} {
		if order[i].Name() != want {
			t.Fatalf("SortedFuncs[%d] = %s, want %s (declaration order)", i, order[i].Name(), want)
		}
	}
}
