// Package analysis is a small static-analysis framework modeled on
// golang.org/x/tools/go/analysis, built only on the standard library so
// the repository stays dependency-free. It powers cmd/kvdlint, the
// domain-specific lint suite that mechanically enforces the simulation's
// core invariants:
//
//   - every simulated-memory access flows through the counted accessor
//     layer (unaccountedaccess), keeping the paper's DMA arithmetic honest;
//   - model packages never consult wall-clock time or the global rand
//     source (walltime), keeping runs deterministic and reproducible;
//   - fault-counter names resolve against the internal/fault registry
//     (faultpoint), so a typo cannot silently disable chaos coverage;
//   - no struct field mixes sync/atomic and plain access (atomiccounter);
//   - error and Response results on Apply/DMA paths are never silently
//     dropped (statuserr).
//
// Analyzers inspect one type-checked package at a time through a Pass,
// report Diagnostics (optionally carrying SuggestedFixes applied by
// `kvdlint -fix`), and can be suppressed at a specific site with a
// `//lint:allow <name> -- <reason>` comment on the offending line or the
// line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces
	// and why the invariant matters for paper fidelity.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass presents one type-checked package (including its in-package test
// files when loaded through Load) to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. The runner installs this hook.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned within the package's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional; token.NoPos means unknown
	Message string

	// SuggestedFixes, if any, are mechanical rewrites that resolve the
	// diagnostic. kvdlint -fix applies the first fix of each diagnostic.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained rewrite resolving a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Inspect walks every file of the pass in depth-first order, calling fn
// for each node. If fn returns false the node's children are skipped.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// CalleeFunc resolves the called function or method of call, or nil if
// the callee is not a statically known *types.Func (e.g. a call of a
// function-typed variable, a conversion, or a built-in).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether call statically calls one of the named
// package-level functions of the package with the given import path.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// ReceiverNamed returns the named type of a method's receiver (looking
// through a pointer), or nil if fn is not a method on a named type.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
