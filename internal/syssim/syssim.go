// Package syssim is an integrated, event-driven simulation of one
// KV-Direct NIC end to end: client batches cross the network, the decoder
// unpacks one operation per clock cycle, the reservation station chains
// dependent operations, independent operations issue their DMAs against
// concurrency-limited memory resources (two PCIe endpoints with tag
// limits, the NIC DRAM channel), and responses travel back.
//
// Where internal/model computes bottleneck arithmetic and internal/ooo
// simulates the pipeline in isolation, syssim composes every latency and
// concurrency limit in one simulation, producing both sustained
// throughput and full end-to-end latency distributions under a
// closed-loop offered load. The experiments use it to cross-validate
// Figures 16 and 17.
package syssim

import (
	"math"

	"kvdirect/internal/netmodel"
	"kvdirect/internal/pcie"
	"kvdirect/internal/sim"
	"kvdirect/internal/stats"
)

// Op is one operation in the simulated stream.
type Op struct {
	Key uint64 // key identity (dependency tracking)
	Put bool   // mutating op (extra DMA + posted write tail)
}

// Config parameterizes the simulation. Zero values take defaults from
// the paper's hardware.
type Config struct {
	ClockHz float64 // KV processor clock (180e6)
	Window  int     // max in-flight ops (256)
	RSSlots int     // reservation-station hash slots (1024)

	// Memory behaviour, measured from the functional store.
	GetDMAs   float64 // mean memory accesses per GET (>= 1)
	PutDMAs   float64 // mean memory accesses per PUT (>= 1)
	DRAMShare float64 // fraction of accesses served by NIC DRAM

	PCIe            pcie.Config // latency model
	PCIeConcurrency int         // in-flight DMA limit (2 endpoints x 64 tags)
	DRAMLatencyNs   float64     // NIC DRAM access latency (~200 ns)
	DRAMConcurrency int         // DRAM bank parallelism

	Net         netmodel.Config
	OpWireBytes int // per-op bytes inside a batch (~18 for tiny KVs)
	BatchOps    int // ops per request packet
	Clients     int // closed-loop clients, one batch outstanding each

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ClockHz == 0 {
		c.ClockHz = 180e6
	}
	if c.Window == 0 {
		c.Window = 256
	}
	if c.RSSlots == 0 {
		c.RSSlots = 1024
	}
	if c.GetDMAs == 0 {
		c.GetDMAs = 1
	}
	if c.PutDMAs == 0 {
		c.PutDMAs = 2
	}
	if c.PCIe.LinkBytesPerSec == 0 {
		c.PCIe = pcie.DefaultConfig()
	}
	if c.PCIeConcurrency == 0 {
		c.PCIeConcurrency = 128 // 2 endpoints x 64 tags
	}
	if c.DRAMLatencyNs == 0 {
		c.DRAMLatencyNs = 200
	}
	if c.DRAMConcurrency == 0 {
		// 12.8 GB/s at 64 B per access and ~200 ns latency needs ~40
		// overlapped accesses (Little's law).
		c.DRAMConcurrency = 40
	}
	if c.Net.BytesPerSec == 0 {
		c.Net = netmodel.DefaultConfig()
	}
	if c.OpWireBytes == 0 {
		c.OpWireBytes = 18
	}
	if c.BatchOps == 0 {
		c.BatchOps = 40
	}
	if c.Clients == 0 {
		c.Clients = 16
	}
	return c
}

// Result reports one simulation run.
type Result struct {
	Ops        int
	ElapsedNs  float64
	OpsPerSec  float64
	Latency    *stats.Sample // end-to-end per-op latency, ns
	PCIeUtil   float64       // mean in-flight DMAs / concurrency
	DRAMUtil   float64
	Forwarded  uint64  // ops completed by reservation-station forwarding
	DecodeBusy float64 // decoder utilization (issue slots used)
}

// resource is a concurrency-limited service center with FIFO admission.
type resource struct {
	slots int
	busy  int
	queue []func()

	// utilization accounting
	busyIntegral float64
	lastT        float64
}

func (r *resource) tick(t float64) {
	r.busyIntegral += float64(r.busy) * (t - r.lastT)
	r.lastT = t
}

// acquire runs f as soon as a slot frees (possibly immediately).
func (r *resource) acquire(t float64, f func()) {
	r.tick(t)
	if r.busy < r.slots {
		r.busy++
		f()
		return
	}
	r.queue = append(r.queue, f)
}

// release frees a slot at time t, admitting the next waiter.
func (r *resource) release(t float64) {
	r.tick(t)
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		next() // slot transfers to the waiter
		return
	}
	r.busy--
}

type rsEntry struct {
	busy  bool
	key   uint64 // head's key (forwarding matches on the full key)
	chain []*opState
}

type opState struct {
	op     Op
	sentAt float64 // client send time (latency anchor)
	batch  *batchState
}

type batchState struct {
	client    int
	remaining int
}

// Run simulates nOps operations drawn round-robin from the stream
// generator and returns sustained throughput and latency.
func Run(cfg Config, nOps int, next func() Op) Result {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(cfg.Seed)
	var clk sim.Clock
	q := sim.NewEventQueue()

	cycleNs := 1e9 / cfg.ClockHz
	pcieRes := &resource{slots: cfg.PCIeConcurrency}
	dramRes := &resource{slots: cfg.DRAMConcurrency}
	rs := make([]*rsEntry, cfg.RSSlots)
	for i := range rs {
		rs[i] = &rsEntry{}
	}

	lat := stats.NewSample(nOps)
	completed := 0
	issued := 0
	inflight := 0
	decoderFree := 0.0
	decodeBusyNs := 0.0
	var forwarded uint64

	// One-way network delay for a batch.
	netDelay := func(ops int) float64 {
		ser := float64(ops*cfg.OpWireBytes+cfg.Net.PacketOverhead) / cfg.Net.BytesPerSec * 1e9
		return cfg.Net.RTTNs/2 + ser
	}

	var completeOp func(st *opState)
	var finishHead func(slot int)

	// memoryAccess performs one DMA and then calls done.
	memoryAccess := func(write bool, done func()) {
		toDRAM := rng.Float64() < cfg.DRAMShare
		res := pcieRes
		if toDRAM {
			res = dramRes
		}
		res.acquire(clk.Now(), func() {
			var svc float64
			if toDRAM {
				svc = rng.Normal(cfg.DRAMLatencyNs, cfg.DRAMLatencyNs/4, cfg.DRAMLatencyNs/2)
			} else if write {
				svc = cfg.PCIe.WriteRTTNs
			} else {
				svc = cfg.PCIe.SampleReadLatencyNs(rng)
			}
			q.Schedule(clk.Now()+svc, func() {
				res.release(clk.Now())
				done()
			})
		})
	}

	// dmasFor samples the DMA count for an op: floor(mean) plus one more
	// with the fractional probability.
	dmasFor := func(put bool) int {
		mean := cfg.GetDMAs
		if put {
			mean = cfg.PutDMAs
		}
		n := int(mean)
		if rng.Float64() < mean-float64(n) {
			n++
		}
		if n < 1 {
			n = 1
		}
		return n
	}

	// executeHead runs an op's DMAs sequentially (dependent accesses:
	// bucket, then data), then finishes the head.
	executeHead := func(st *opState, slot int) {
		n := dmasFor(st.op.Put)
		var step func(i int)
		step = func(i int) {
			if i >= n {
				completeOp(st)
				finishHead(slot)
				return
			}
			// The final access of a PUT is a posted write.
			write := st.op.Put && i == n-1
			memoryAccess(write, func() { step(i + 1) })
		}
		step(0)
	}

	finishHead = func(slot int) {
		e := rs[slot]
		// Forward chained ops whose key matches the head (one per cycle);
		// hash-collision false positives stay queued for the pipeline.
		var rest []*opState
		dirty := false
		fwd := 0
		for _, st := range e.chain {
			if st.op.Key == e.key {
				fwd++
				st := st
				q.Schedule(clk.Now()+float64(fwd)*cycleNs, func() { completeOp(st) })
				if st.op.Put {
					dirty = true
				}
			} else {
				rest = append(rest, st)
			}
		}
		forwarded += uint64(fwd)
		e.chain = rest
		if dirty {
			// Cache write-back: one posted DMA; the slot stays busy and the
			// chain is rescanned afterwards (new same-key arrivals chain in
			// the meantime).
			memoryAccess(true, func() { finishHead(slot) })
			return
		}
		if len(e.chain) > 0 {
			next := e.chain[0]
			e.chain = e.chain[1:]
			e.key = next.op.Key
			executeHead(next, slot)
			return
		}
		e.busy = false
	}

	// Window gate: ops decoded but not completed are capped at Window
	// (the reservation station's in-flight limit).
	serverInflight := 0
	var windowQ []*opState
	var issueOp func(st *opState)
	admit := func(st *opState) {
		if serverInflight >= cfg.Window {
			windowQ = append(windowQ, st)
			return
		}
		serverInflight++
		issueOp(st)
	}

	// The decoder issues one op per clock cycle into the RS.
	issueOp = func(st *opState) {
		start := math.Max(clk.Now(), decoderFree)
		decoderFree = start + cycleNs
		decodeBusyNs += cycleNs
		q.Schedule(start+cycleNs, func() {
			slot := int(st.op.Key % uint64(cfg.RSSlots))
			e := rs[slot]
			if e.busy {
				e.chain = append(e.chain, st)
				return
			}
			e.busy = true
			e.key = st.op.Key
			executeHead(st, slot)
		})
	}

	var sendBatch func(client int)
	completeOp = func(st *opState) {
		completed++
		inflight--
		serverInflight--
		if len(windowQ) > 0 {
			nextOp := windowQ[0]
			windowQ = windowQ[1:]
			serverInflight++
			issueOp(nextOp)
		}
		st.batch.remaining--
		if st.batch.remaining == 0 {
			// Whole batch done: response travels back, client sends the
			// next batch after it lands.
			client := st.batch.client
			q.Schedule(clk.Now()+netDelay(cfg.BatchOps), func() {
				if issued < nOps {
					sendBatch(client)
				}
			})
		}
		lat.Add(clk.Now() - st.sentAt + netDelay(1)) // response one-way
	}

	sendBatch = func(client int) {
		n := cfg.BatchOps
		if nOps-issued < n {
			n = nOps - issued
		}
		if n <= 0 {
			return
		}
		b := &batchState{client: client, remaining: n}
		sent := clk.Now()
		arrive := sent + netDelay(n)
		for i := 0; i < n; i++ {
			op := next()
			issued++
			inflight++
			st := &opState{op: op, sentAt: sent, batch: b}
			q.Schedule(arrive, func() { admit(st) })
		}
	}

	for c := 0; c < cfg.Clients && issued < nOps; c++ {
		sendBatch(c)
	}
	for q.RunNext(&clk) {
	}

	elapsed := clk.Now()
	res := Result{
		Ops:       completed,
		ElapsedNs: elapsed,
		Latency:   lat,
		Forwarded: forwarded,
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(completed) / (elapsed * 1e-9)
		pcieRes.tick(elapsed)
		dramRes.tick(elapsed)
		res.PCIeUtil = pcieRes.busyIntegral / (elapsed * float64(cfg.PCIeConcurrency))
		res.DRAMUtil = dramRes.busyIntegral / (elapsed * float64(cfg.DRAMConcurrency))
		res.DecodeBusy = decodeBusyNs / elapsed
	}
	return res
}
