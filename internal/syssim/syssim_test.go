package syssim

import (
	"math/rand"
	"testing"

	"kvdirect/internal/workload"
)

func uniformStream(keys uint64, putRatio float64, seed int64) func() Op {
	rng := rand.New(rand.NewSource(seed))
	return func() Op {
		return Op{
			Key: uint64(rng.Int63n(int64(keys))),
			Put: rng.Float64() < putRatio,
		}
	}
}

func zipfStream(keys uint64, putRatio float64, seed int64) func() Op {
	gen := workload.New(workload.Config{Keys: keys, Skew: 0.99, Seed: seed})
	rng := rand.New(rand.NewSource(seed + 1))
	return func() Op {
		return Op{Key: gen.NextKey(), Put: rng.Float64() < putRatio}
	}
}

func TestSaturatedThroughputNearMemoryBound(t *testing.T) {
	// Uniform GETs at 1 access/op, no DRAM dispatch: the bound is the
	// PCIe tag pool — 128 tags / ~1050 ns ≈ 120 Mops.
	cfg := Config{GetDMAs: 1.0, DRAMShare: 0, Clients: 16, BatchOps: 40, Seed: 1}
	res := Run(cfg, 100000, uniformStream(1<<20, 0, 2))
	if res.Ops != 100000 {
		t.Fatalf("completed %d", res.Ops)
	}
	if res.OpsPerSec < 95e6 || res.OpsPerSec > 135e6 {
		t.Errorf("uniform GET throughput = %.1f Mops, want ~110-120", res.OpsPerSec/1e6)
	}
	if res.PCIeUtil < 0.7 {
		t.Errorf("PCIe utilization = %.2f, want near saturation", res.PCIeUtil)
	}
}

func TestDispatchLiftsThroughput(t *testing.T) {
	base := Run(Config{GetDMAs: 1.0, DRAMShare: 0, Seed: 3}, 60000, uniformStream(1<<20, 0, 4))
	disp := Run(Config{GetDMAs: 1.0, DRAMShare: 0.4, Seed: 3}, 60000, uniformStream(1<<20, 0, 4))
	if disp.OpsPerSec <= base.OpsPerSec {
		t.Errorf("DRAM dispatch should lift throughput: %.1f vs %.1f Mops",
			disp.OpsPerSec/1e6, base.OpsPerSec/1e6)
	}
}

func TestClockBoundWhenMemoryIsFree(t *testing.T) {
	// Nearly everything served by (plentiful) DRAM: the decoder's one op
	// per cycle becomes the limit.
	cfg := Config{GetDMAs: 1.0, DRAMShare: 0.95, DRAMConcurrency: 512,
		Clients: 64, BatchOps: 64, Seed: 5}
	res := Run(cfg, 200000, uniformStream(1<<20, 0, 6))
	if res.OpsPerSec < 150e6 || res.OpsPerSec > 181e6 {
		t.Errorf("throughput = %.1f Mops, want near the 180 clock bound", res.OpsPerSec/1e6)
	}
	if res.DecodeBusy < 0.8 {
		t.Errorf("decoder utilization = %.2f, want near 1", res.DecodeBusy)
	}
}

func TestPutsCostMoreThanGets(t *testing.T) {
	gets := Run(Config{GetDMAs: 1, PutDMAs: 2, Seed: 7}, 60000, uniformStream(1<<20, 0, 8))
	puts := Run(Config{GetDMAs: 1, PutDMAs: 2, Seed: 7}, 60000, uniformStream(1<<20, 1, 8))
	if puts.OpsPerSec >= gets.OpsPerSec {
		t.Errorf("PUTs (%.1f Mops) should be slower than GETs (%.1f)",
			puts.OpsPerSec/1e6, gets.OpsPerSec/1e6)
	}
	if puts.Latency.Percentile(50) <= gets.Latency.Percentile(50) {
		t.Error("PUT latency should exceed GET latency")
	}
}

func TestLatencyInPaperBallpark(t *testing.T) {
	// Figure 17 territory: a moderately loaded system sees 3-10 us
	// end-to-end (network + pipeline + memory).
	cfg := Config{GetDMAs: 1.2, DRAMShare: 0.2, Clients: 4, BatchOps: 16, Seed: 9}
	res := Run(cfg, 50000, uniformStream(1<<20, 0.05, 10))
	p50 := res.Latency.Percentile(50) / 1000
	p95 := res.Latency.Percentile(95) / 1000
	if p50 < 2 || p50 > 10 {
		t.Errorf("P50 latency = %.2f us, want 2-10", p50)
	}
	if p95 < p50 || p95 > 20 {
		t.Errorf("P95 latency = %.2f us, want %.2f-20", p95, p50)
	}
}

func TestHotKeysForwarded(t *testing.T) {
	// A Zipf stream produces reservation-station forwarding; a uniform
	// stream over a huge key space barely any.
	zipf := Run(Config{Seed: 11}, 80000, zipfStream(1<<20, 0.5, 12))
	uni := Run(Config{Seed: 11}, 80000, uniformStream(1<<20, 0.5, 12))
	if zipf.Forwarded < 10*uni.Forwarded {
		t.Errorf("zipf forwarded %d vs uniform %d — expected a big gap",
			zipf.Forwarded, uni.Forwarded)
	}
	// Forwarding lifts throughput for skewed traffic.
	if zipf.OpsPerSec <= uni.OpsPerSec {
		t.Errorf("zipf %.1f Mops should beat uniform %.1f (merging)",
			zipf.OpsPerSec/1e6, uni.OpsPerSec/1e6)
	}
}

func TestMoreClientsMoreThroughputUntilSaturation(t *testing.T) {
	rate := func(clients int) float64 {
		cfg := Config{GetDMAs: 1, Clients: clients, BatchOps: 16, Seed: 13}
		return Run(cfg, 50000, uniformStream(1<<20, 0, 14)).OpsPerSec
	}
	r1, r4, r16 := rate(1), rate(4), rate(16)
	if !(r1 < r4 && r4 <= r16*1.05) {
		t.Errorf("throughput not increasing with clients: %.1f %.1f %.1f Mops",
			r1/1e6, r4/1e6, r16/1e6)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{Seed: 15}
	a := Run(cfg, 20000, uniformStream(1000, 0.3, 16))
	b := Run(cfg, 20000, uniformStream(1000, 0.3, 16))
	if a.OpsPerSec != b.OpsPerSec || a.ElapsedNs != b.ElapsedNs {
		t.Error("simulation not deterministic")
	}
}

func TestAllOpsComplete(t *testing.T) {
	res := Run(Config{Seed: 17}, 12345, zipfStream(1<<16, 0.5, 18))
	if res.Ops != 12345 {
		t.Fatalf("completed %d / 12345", res.Ops)
	}
	if res.Latency.N() != 12345 {
		t.Fatalf("latency samples %d", res.Latency.N())
	}
}
