package pcie

import (
	"math"
	"testing"

	"kvdirect/internal/sim"
)

func TestRead64BMatchesPaperFigure3a(t *testing.T) {
	c := DefaultConfig()
	got := c.ReadOpsPerSec(64)
	// Paper: 64 tags at 1050 ns renders ~60 Mops.
	if got < 55e6 || got > 65e6 {
		t.Errorf("analytic 64 B read = %.1f Mops, want ~60", got/1e6)
	}
}

func TestWriteNearTheoretical64B(t *testing.T) {
	c := DefaultConfig()
	got := c.WriteOpsPerSec(64)
	// Paper: theoretical 64 B throughput 5.6 GB/s = 87 Mops.
	if got < 80e6 || got > 90e6 {
		t.Errorf("analytic 64 B write = %.1f Mops, want ~87", got/1e6)
	}
}

func TestWritesFasterThanReadsSmallPayloads(t *testing.T) {
	c := DefaultConfig()
	for _, sz := range []int{16, 32, 64} {
		if c.WriteOpsPerSec(sz) <= c.ReadOpsPerSec(sz) {
			t.Errorf("at %d B writes (%.1fM) should beat reads (%.1fM)",
				sz, c.WriteOpsPerSec(sz)/1e6, c.ReadOpsPerSec(sz)/1e6)
		}
	}
}

func TestLargePayloadBandwidthBound(t *testing.T) {
	c := DefaultConfig()
	// At 512 B both directions converge to the bandwidth curve.
	r, w := c.ReadOpsPerSec(512), c.WriteOpsPerSec(512)
	bw := c.LinkBytesPerSec / float64(512+c.TLPHeaderBytes)
	if math.Abs(r-bw) > 1 || math.Abs(w-bw) > 1 {
		t.Errorf("512 B r=%g w=%g, want bandwidth bound %g", r, w, bw)
	}
}

func TestConcurrencyToSaturateMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	// Paper: 92 concurrent 64 B reads needed at 1050 ns latency.
	got := c.ConcurrencyToSaturate(64)
	if got < 88 || got > 96 {
		t.Errorf("ConcurrencyToSaturate(64) = %d, want ~92", got)
	}
}

func TestSampleLatencyRange(t *testing.T) {
	c := DefaultConfig()
	rng := sim.NewRNG(1)
	for i := 0; i < 10000; i++ {
		l := c.SampleReadLatencyNs(rng)
		if l < c.CachedReadNs {
			t.Fatalf("latency %g below cached floor %g", l, c.CachedReadNs)
		}
		if l > c.CachedReadNs+4*c.RandomExtraMeanNs+1 {
			t.Fatalf("latency %g above truncation", l)
		}
	}
}

func TestSampleLatencyMeanMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	rng := sim.NewRNG(2)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += c.SampleReadLatencyNs(rng)
	}
	mean := sum / n
	// ~800 + ~250 (slightly less due to truncation) = ~1030-1060 ns.
	if mean < 1000 || mean > 1080 {
		t.Errorf("mean latency = %.0f ns, want ~1050", mean)
	}
}

func TestSimulatedReadsMatchAnalytic(t *testing.T) {
	c := DefaultConfig()
	rng := sim.NewRNG(3)
	res := c.SimulateRandomAccess(20000, 256, 64, false, rng)
	analytic := c.ReadOpsPerSec(64)
	if ratio := res.OpsPerSec / analytic; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("simulated 64 B reads %.1f Mops vs analytic %.1f Mops (ratio %.2f)",
			res.OpsPerSec/1e6, analytic/1e6, ratio)
	}
	if res.Saturated {
		t.Error("64 B reads should be tag-bound, not link-saturated")
	}
}

func TestSimulatedWritesSaturateLink(t *testing.T) {
	c := DefaultConfig()
	rng := sim.NewRNG(4)
	res := c.SimulateRandomAccess(20000, 256, 64, true, rng)
	analytic := c.WriteOpsPerSec(64)
	if ratio := res.OpsPerSec / analytic; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("simulated 64 B writes %.1f Mops vs analytic %.1f Mops",
			res.OpsPerSec/1e6, analytic/1e6)
	}
	if !res.Saturated {
		t.Error("64 B posted writes should saturate the link")
	}
}

func TestSimThroughputRisesWithConcurrencyThenPlateaus(t *testing.T) {
	c := DefaultConfig()
	prev := 0.0
	rates := map[int]float64{}
	for _, conc := range []int{1, 8, 32, 64, 128} {
		rng := sim.NewRNG(5)
		res := c.SimulateRandomAccess(8000, conc, 64, false, rng)
		rates[conc] = res.OpsPerSec
		if conc <= 64 && res.OpsPerSec < prev*0.99 {
			t.Errorf("throughput fell at concurrency %d: %.1f < %.1f Mops",
				conc, res.OpsPerSec/1e6, prev/1e6)
		}
		prev = res.OpsPerSec
	}
	// Past 64 tags, extra offered concurrency gains nothing.
	if rates[128] > rates[64]*1.02 {
		t.Errorf("tags should cap concurrency: 64→%.1f, 128→%.1f Mops",
			rates[64]/1e6, rates[128]/1e6)
	}
	// Single-request-at-a-time is roughly 1/latency.
	want := 1e9 / c.AvgReadLatencyNs()
	if r := rates[1]; r < want*0.8 || r > want*1.2 {
		t.Errorf("concurrency-1 rate %.2f Mops, want ~%.2f", r/1e6, want/1e6)
	}
}

func TestSimLatencyCDFShape(t *testing.T) {
	// Figure 3b: latencies between ~800 ns and ~2 µs, median ~1 µs.
	c := DefaultConfig()
	rng := sim.NewRNG(6)
	res := c.SimulateRandomAccess(20000, 64, 64, false, rng)
	p5 := res.Latency.Percentile(5)
	p50 := res.Latency.Percentile(50)
	p95 := res.Latency.Percentile(95)
	if p5 < c.CachedReadNs {
		t.Errorf("P5 latency %.0f below cached base", p5)
	}
	if p50 < 900 || p50 > 1200 {
		t.Errorf("median latency %.0f ns, want ~1000", p50)
	}
	if p95 > 2500 {
		t.Errorf("P95 latency %.0f ns, want < 2.5 µs", p95)
	}
	if !(p5 < p50 && p50 < p95) {
		t.Errorf("percentiles not ordered: %g %g %g", p5, p50, p95)
	}
}

func TestSimCompletesAllRequests(t *testing.T) {
	c := DefaultConfig()
	rng := sim.NewRNG(7)
	res := c.SimulateRandomAccess(1234, 10, 64, false, rng)
	if res.Requests != 1234 {
		t.Errorf("completed %d, want 1234", res.Requests)
	}
}

func TestSimDeterministic(t *testing.T) {
	c := DefaultConfig()
	a := c.SimulateRandomAccess(5000, 64, 64, false, sim.NewRNG(9))
	b := c.SimulateRandomAccess(5000, 64, 64, false, sim.NewRNG(9))
	if a.OpsPerSec != b.OpsPerSec || a.ElapsedNs != b.ElapsedNs {
		t.Error("simulation is not deterministic for equal seeds")
	}
}

func TestZeroPayload(t *testing.T) {
	c := DefaultConfig()
	if c.ReadOpsPerSec(0) != 0 || c.WriteOpsPerSec(-4) != 0 {
		t.Error("non-positive payloads should return 0")
	}
}
