package pcie

import (
	"testing"

	"kvdirect/internal/fault"
	"kvdirect/internal/sim"
)

// TestSimStallsAddLatency: injected stalls must raise mean read latency
// without losing any request.
func TestSimStallsAddLatency(t *testing.T) {
	const n = 2000
	clean := DefaultConfig()
	base := clean.SimulateRandomAccess(n, 16, 64, false, sim.NewRNG(1))

	faulty := DefaultConfig()
	faulty.Faults = fault.NewInjector(2).Set(fault.PCIeStall, 0.2)
	faulty.StallPenaltyNs = 20e3
	res := faulty.SimulateRandomAccess(n, 16, 64, false, sim.NewRNG(1))

	if res.Requests != n {
		t.Fatalf("completed %d of %d requests", res.Requests, n)
	}
	if res.Stalls == 0 {
		t.Fatal("no stalls recorded")
	}
	if res.Latency.Mean() <= base.Latency.Mean() {
		t.Fatalf("stalls did not raise latency: %.0f ns vs %.0f ns",
			res.Latency.Mean(), base.Latency.Mean())
	}
	if res.OpsPerSec >= base.OpsPerSec {
		t.Fatalf("stalls did not cut throughput: %.0f vs %.0f ops/s",
			res.OpsPerSec, base.OpsPerSec)
	}
}

// TestSimDropTagRecovers: every dropped completion must be re-issued —
// all requests still complete, each timeout showing up as ~TimeoutNs of
// extra latency for its request.
func TestSimDropTagRecovers(t *testing.T) {
	const n = 2000
	cfg := DefaultConfig()
	cfg.Faults = fault.NewInjector(3).Set(fault.PCIeDropTag, 0.05)
	cfg.TimeoutNs = 50e3
	res := cfg.SimulateRandomAccess(n, 16, 64, false, sim.NewRNG(1))

	if res.Requests != n {
		t.Fatalf("completed %d of %d requests — drops lost work", res.Requests, n)
	}
	if res.Timeouts == 0 {
		t.Fatal("no timeouts recorded")
	}
	if res.Latency.Percentile(99.9) < cfg.TimeoutNs {
		t.Fatalf("p99.9 latency %.0f ns below the timeout %0.f ns — re-issues unaccounted",
			res.Latency.Percentile(99.9), cfg.TimeoutNs)
	}
}

// TestSimNoFaultsIdentical: a nil injector must not perturb the
// simulation at all (same RNG stream, same result).
func TestSimNoFaultsIdentical(t *testing.T) {
	a := DefaultConfig().SimulateRandomAccess(500, 8, 64, false, sim.NewRNG(7))
	cfg := DefaultConfig()
	cfg.Faults = fault.NewInjector(9) // all probabilities zero
	b := cfg.SimulateRandomAccess(500, 8, 64, false, sim.NewRNG(7))
	if a.OpsPerSec != b.OpsPerSec || a.ElapsedNs != b.ElapsedNs {
		t.Fatalf("zero-probability injector changed the simulation: %v vs %v",
			a.OpsPerSec, b.OpsPerSec)
	}
	if b.Stalls != 0 || b.Timeouts != 0 {
		t.Fatalf("phantom faults: stalls=%d timeouts=%d", b.Stalls, b.Timeouts)
	}
}
