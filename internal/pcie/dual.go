package pcie

import (
	"math"

	"kvdirect/internal/sim"
	"kvdirect/internal/stats"
)

// The programmable NIC attaches through TWO PCIe Gen3 x8 endpoints in a
// bifurcated x16 physical connector (paper §4). Each endpoint has its own
// link, tag pool and credit pool; the NIC's DMA engine spreads requests
// across them, which is what makes the aggregate 13.2 GB/s (and the
// 120 Mops of random 64 B reads the load dispatcher budgets for)
// achievable.

// DualResult reports a multi-endpoint simulation.
type DualResult struct {
	OpsPerSec float64
	Latency   *stats.Sample
	PerEP     []int   // requests served by each endpoint
	Imbalance float64 // max/min per-endpoint load ratio
}

// SimulateDual runs nRequests random DMA reads across `endpoints`
// identical endpoints with round-robin dispatch and per-endpoint window
// limits. It reproduces the aggregate scaling the paper relies on: two
// endpoints deliver (nearly) twice one endpoint's throughput because
// tags, credits and link serialization are all per endpoint.
func (c Config) SimulateDual(nRequests, perEPConcurrency, payloadBytes, endpoints int, write bool, rng *sim.RNG) DualResult {
	if endpoints < 1 {
		endpoints = 1
	}
	type endpoint struct {
		linkFree float64
		inflight int
		served   int
	}
	eps := make([]*endpoint, endpoints)
	for i := range eps {
		eps[i] = &endpoint{}
	}
	limit := perEPConcurrency
	if write {
		if c.PostedCredits < limit {
			limit = c.PostedCredits
		}
	} else if rc := c.readConcurrency(); rc < limit {
		limit = rc
	}

	var clk sim.Clock
	q := sim.NewEventQueue()
	lat := stats.NewSample(nRequests)
	perReqLinkNs := float64(payloadBytes+c.TLPHeaderBytes) / c.LinkBytesPerSec * 1e9

	issued, completed := 0, 0
	var tryIssue func()
	tryIssue = func() {
		for issued < nRequests {
			// Least-loaded endpoint (the DMA engine balances).
			var ep *endpoint
			for _, e := range eps {
				if e.inflight < limit && (ep == nil || e.inflight < ep.inflight) {
					ep = e
				}
			}
			if ep == nil {
				return // all endpoints at their window
			}
			start := math.Max(clk.Now(), ep.linkFree)
			ep.linkFree = start + perReqLinkNs
			var done float64
			if write {
				done = ep.linkFree + c.WriteRTTNs
			} else {
				done = ep.linkFree + c.SampleReadLatencyNs(rng)
			}
			issueTime := clk.Now()
			issued++
			ep.inflight++
			ep.served++
			q.Schedule(done, func() {
				completed++
				ep.inflight--
				lat.Add(clk.Now() - issueTime)
				tryIssue()
			})
		}
	}
	tryIssue()
	for q.RunNext(&clk) {
	}

	res := DualResult{Latency: lat, PerEP: make([]int, endpoints)}
	min, max := nRequests, 0
	for i, e := range eps {
		res.PerEP[i] = e.served
		if e.served < min {
			min = e.served
		}
		if e.served > max {
			max = e.served
		}
	}
	if min > 0 {
		res.Imbalance = float64(max) / float64(min)
	}
	if clk.Now() > 0 {
		res.OpsPerSec = float64(completed) / (clk.Now() * 1e-9)
	}
	return res
}
