package pcie

import (
	"testing"

	"kvdirect/internal/sim"
)

func TestDualEndpointsDoubleThroughput(t *testing.T) {
	c := DefaultConfig()
	one := c.SimulateDual(20000, 256, 64, 1, false, sim.NewRNG(1))
	two := c.SimulateDual(20000, 256, 64, 2, false, sim.NewRNG(1))
	ratio := two.OpsPerSec / one.OpsPerSec
	if ratio < 1.85 || ratio > 2.1 {
		t.Errorf("2-endpoint scaling = %.2fx (%.1f vs %.1f Mops), want ~2x",
			ratio, two.OpsPerSec/1e6, one.OpsPerSec/1e6)
	}
	// Paper budget: two endpoints sustain ~120 Mops of 64 B reads.
	if two.OpsPerSec < 110e6 || two.OpsPerSec > 130e6 {
		t.Errorf("dual 64 B read rate = %.1f Mops, want ~120", two.OpsPerSec/1e6)
	}
}

func TestDualMatchesSingleEndpointSim(t *testing.T) {
	c := DefaultConfig()
	single := c.SimulateRandomAccess(20000, 256, 64, false, sim.NewRNG(2))
	dualAsOne := c.SimulateDual(20000, 256, 64, 1, false, sim.NewRNG(2))
	ratio := dualAsOne.OpsPerSec / single.OpsPerSec
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("1-endpoint dual sim diverges from single sim: %.2f", ratio)
	}
}

func TestDualLoadBalanced(t *testing.T) {
	c := DefaultConfig()
	res := c.SimulateDual(20000, 256, 64, 2, false, sim.NewRNG(3))
	if res.Imbalance > 1.02 {
		t.Errorf("endpoint imbalance = %.3f, want ~1 (least-loaded dispatch)", res.Imbalance)
	}
	if res.PerEP[0]+res.PerEP[1] != 20000 {
		t.Errorf("served %d + %d != 20000", res.PerEP[0], res.PerEP[1])
	}
}

func TestDualWrites(t *testing.T) {
	c := DefaultConfig()
	res := c.SimulateDual(20000, 256, 64, 2, true, sim.NewRNG(4))
	// Two endpoints of posted 64 B writes ≈ 2 x 87 Mops.
	if res.OpsPerSec < 160e6 || res.OpsPerSec > 185e6 {
		t.Errorf("dual 64 B write rate = %.1f Mops, want ~175", res.OpsPerSec/1e6)
	}
}

func TestDualLatencyUnchangedByEndpointCount(t *testing.T) {
	// Adding endpoints adds bandwidth, not per-request speed.
	c := DefaultConfig()
	one := c.SimulateDual(10000, 32, 64, 1, false, sim.NewRNG(5))
	four := c.SimulateDual(10000, 32, 64, 4, false, sim.NewRNG(5))
	p50a, p50b := one.Latency.Percentile(50), four.Latency.Percentile(50)
	if p50b > p50a*1.1 {
		t.Errorf("median latency grew with endpoints: %.0f -> %.0f ns", p50a, p50b)
	}
}
