// Package pcie models a PCIe Gen3 x8 endpoint as seen by the KV-Direct
// NIC's DMA engine (paper §2.4, Figure 3): transport-layer packet overhead,
// credit-based flow control, the 64-tag read concurrency limit, and the
// cached/random DMA latency distribution.
//
// Two views are provided:
//
//   - analytic curves (ReadOpsPerSec/WriteOpsPerSec) that reproduce
//     Figure 3a from first principles, and
//   - an event-driven DMA engine simulation (SimulateRandomAccess) that
//     derives the same curves from per-request behaviour and produces the
//     latency CDF of Figure 3b.
package pcie

import (
	"math"

	"kvdirect/internal/fault"
	"kvdirect/internal/sim"
	"kvdirect/internal/stats"
	"kvdirect/internal/telemetry"
)

// Config captures one PCIe Gen3 x8 endpoint's parameters. The zero value is
// not useful; use DefaultConfig.
type Config struct {
	LinkBytesPerSec   float64 // theoretical link bandwidth (7.87 GB/s)
	TLPHeaderBytes    int     // TLP header + padding (26 B, 64-bit addressing)
	CachedReadNs      float64 // DMA read latency when host cache hits (800 ns)
	RandomExtraMeanNs float64 // mean extra latency for non-cached reads (250 ns)
	WriteRTTNs        float64 // posted-write credit turnaround (~link RTT, 500 ns)
	ReadTags          int     // DMA tags limiting read concurrency (64)
	PostedCredits     int     // TLP posted header credits for writes (88)
	NonPostedCredits  int     // TLP non-posted header credits for reads (84)

	// Faults optionally injects link-level events into the event-driven
	// simulation: PCIeStall delays a request's completion by
	// StallPenaltyNs; PCIeDropTag loses a read completion, and the tag
	// is re-issued after TimeoutNs. Nil disables injection.
	Faults         *fault.Injector
	StallPenaltyNs float64 // extra latency per injected stall (default 10 µs)
	TimeoutNs      float64 // completion-timeout before re-issue (default 100 µs)

	// LatencyHistogram optionally captures each simulated read's latency
	// (virtual-clock ns) into a telemetry histogram alongside the exact
	// Sample, so the Figure 3b CDF is also available through the
	// registry's mergeable/export path. Nil disables capture.
	LatencyHistogram *telemetry.Histogram
}

// DefaultConfig returns the paper's measured endpoint parameters.
func DefaultConfig() Config {
	return Config{
		LinkBytesPerSec:   7.87e9,
		TLPHeaderBytes:    26,
		CachedReadNs:      800,
		RandomExtraMeanNs: 250,
		WriteRTTNs:        500,
		ReadTags:          64,
		PostedCredits:     88,
		NonPostedCredits:  84,
	}
}

// AvgReadLatencyNs returns the mean random (non-cached) DMA read latency.
func (c Config) AvgReadLatencyNs() float64 {
	return c.CachedReadNs + c.RandomExtraMeanNs
}

// readConcurrency returns the effective read concurrency limit: the DMA
// engine's tag count, further capped by non-posted header credits.
func (c Config) readConcurrency() int {
	n := c.ReadTags
	if c.NonPostedCredits < n {
		n = c.NonPostedCredits
	}
	return n
}

// ReadOpsPerSec returns the analytic random DMA read rate for the given
// payload size: min(link bandwidth over payload+TLP header, concurrency
// over latency). This is the read curve of Figure 3a.
func (c Config) ReadOpsPerSec(payloadBytes int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	bw := c.LinkBytesPerSec / float64(payloadBytes+c.TLPHeaderBytes)
	conc := float64(c.readConcurrency()) / (c.AvgReadLatencyNs() * 1e-9)
	return math.Min(bw, conc)
}

// WriteOpsPerSec returns the analytic DMA write rate. Writes are posted
// (no completion round trip) so they are bandwidth-bound until the posted
// header credit pool throttles them. This is the write curve of Figure 3a.
func (c Config) WriteOpsPerSec(payloadBytes int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	bw := c.LinkBytesPerSec / float64(payloadBytes+c.TLPHeaderBytes)
	conc := float64(c.PostedCredits) / (c.WriteRTTNs * 1e-9)
	return math.Min(bw, conc)
}

// ConcurrencyToSaturate returns the number of in-flight 64 B read requests
// needed to keep the link busy (paper: 92 at 1050 ns).
func (c Config) ConcurrencyToSaturate(payloadBytes int) int {
	perReqNs := float64(payloadBytes+c.TLPHeaderBytes) / c.LinkBytesPerSec * 1e9
	return int(math.Ceil(c.AvgReadLatencyNs() / perReqNs))
}

// SampleReadLatencyNs draws one random-read latency: the 800 ns cached base
// plus an exponential extra with the configured mean (DRAM access, refresh
// and PCIe response reordering), truncated at 4x the mean so the tail stays
// within Figure 3b's ~2 µs range.
func (c Config) SampleReadLatencyNs(rng *sim.RNG) float64 {
	extra := rng.Exp(c.RandomExtraMeanNs)
	if max := 4 * c.RandomExtraMeanNs; extra > max {
		extra = max
	}
	return c.CachedReadNs + extra
}

// SimResult reports an event-driven DMA simulation outcome.
type SimResult struct {
	OpsPerSec float64
	Latency   *stats.Sample // per-request latency in ns (reads only)
	Requests  int
	ElapsedNs float64
	Saturated bool // true if the link (not tags/credits) was the bottleneck

	Stalls   int // injected stalls absorbed as extra latency
	Timeouts int // read completions lost and re-issued after timeout
}

// SimulateRandomAccess runs an event-driven simulation of nRequests random
// DMA accesses of payloadBytes at the given offered concurrency (in-flight
// window). For reads, concurrency is additionally capped by tags and
// non-posted credits; for writes, by posted credits.
//
// The model: each request occupies the link for (payload+header)/bandwidth
// seconds (serialized), then completes after a sampled latency (reads) or
// the posted-write turnaround (writes); its completion releases one window
// slot.
func (c Config) SimulateRandomAccess(nRequests, concurrency, payloadBytes int, write bool, rng *sim.RNG) SimResult {
	if concurrency < 1 {
		concurrency = 1
	}
	limit := concurrency
	if write {
		if c.PostedCredits < limit {
			limit = c.PostedCredits
		}
	} else {
		if rc := c.readConcurrency(); rc < limit {
			limit = rc
		}
	}

	var clk sim.Clock
	q := sim.NewEventQueue()
	lat := stats.NewSample(nRequests)

	perReqLinkNs := float64(payloadBytes+c.TLPHeaderBytes) / c.LinkBytesPerSec * 1e9
	linkFree := 0.0 // next time the link can start serializing a TLP
	issued := 0
	completed := 0
	inflight := 0
	linkBusyNs := 0.0

	stallNs := c.StallPenaltyNs
	if stallNs <= 0 {
		stallNs = 10e3 // 10 µs: a flow-control backpressure episode
	}
	timeoutNs := c.TimeoutNs
	if timeoutNs <= 0 {
		timeoutNs = 100e3 // 100 µs completion timeout before tag re-issue
	}
	stalls, timeouts := 0, 0

	var tryIssue func()
	issueOne := func() {
		issueTime := clk.Now()
		issued++
		inflight++
		// serialize puts the request's TLP on the link and schedules its
		// completion; a dropped read completion re-enters here after the
		// tag timeout, so one logical request can serialize repeatedly.
		var serialize func()
		serialize = func() {
			start := math.Max(clk.Now(), linkFree)
			linkFree = start + perReqLinkNs
			linkBusyNs += perReqLinkNs
			var done float64
			if write {
				done = linkFree + c.WriteRTTNs
			} else {
				done = linkFree + c.SampleReadLatencyNs(rng)
			}
			if c.Faults.Should(fault.PCIeStall) {
				done += stallNs
				stalls++
			}
			if !write && c.Faults.Should(fault.PCIeDropTag) {
				// Completion lost in flight: the tag stays occupied until
				// the timeout fires, then the DMA engine re-issues.
				timeouts++
				q.Schedule(start+timeoutNs, serialize)
				return
			}
			q.Schedule(done, func() {
				completed++
				inflight--
				if !write {
					reqNs := clk.Now() - issueTime
					lat.Add(reqNs)
					if c.LatencyHistogram != nil {
						c.LatencyHistogram.Observe(uint64(reqNs))
					}
				}
				tryIssue()
			})
		}
		serialize()
	}
	tryIssue = func() {
		for issued < nRequests && inflight < limit {
			issueOne()
		}
	}

	tryIssue()
	for q.RunNext(&clk) {
	}

	elapsed := clk.Now()
	res := SimResult{
		Latency:   lat,
		Requests:  completed,
		ElapsedNs: elapsed,
		Stalls:    stalls,
		Timeouts:  timeouts,
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(completed) / (elapsed * 1e-9)
	}
	// Link saturated if it was busy for (almost) the whole run.
	res.Saturated = linkBusyNs >= 0.95*elapsed
	return res
}
