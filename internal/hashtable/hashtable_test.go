package hashtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"kvdirect/internal/memory"
	"kvdirect/internal/slab"
)

// testTable builds a table over a fresh simulated memory.
func testTable(t *testing.T, memBytes uint64, ratio float64, inlineThreshold int) (*Table, *memory.Memory, *slab.Allocator) {
	t.Helper()
	mem := memory.New(memBytes)
	idx, slabs := memory.Split(memBytes, ratio)
	alloc := slab.New(slabs, slab.Options{})
	tbl, err := New(mem, alloc, Config{Index: idx, InlineThreshold: inlineThreshold, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, mem, alloc
}

func TestPutGetDelete(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	key, val := []byte("hello"), []byte("world")
	if err := tbl.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q,%v", got, ok)
	}
	if tbl.NumKeys() != 1 {
		t.Errorf("NumKeys = %d", tbl.NumKeys())
	}
	if !tbl.Delete(key) {
		t.Fatal("Delete returned false")
	}
	if _, ok := tbl.Get(key); ok {
		t.Error("Get after Delete succeeded")
	}
	if tbl.NumKeys() != 0 || tbl.PayloadBytes() != 0 {
		t.Errorf("post-delete keys=%d payload=%d", tbl.NumKeys(), tbl.PayloadBytes())
	}
}

func TestGetMissing(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	if _, ok := tbl.Get([]byte("nope")); ok {
		t.Error("Get on empty table succeeded")
	}
	if tbl.Delete([]byte("nope")) {
		t.Error("Delete on empty table succeeded")
	}
}

func TestUpdateInPlace(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	key := []byte("k1")
	if err := tbl.Put(key, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Put(key, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Get(key)
	if string(got) != "bbbb" {
		t.Errorf("updated value = %q", got)
	}
	if tbl.NumKeys() != 1 {
		t.Errorf("NumKeys after update = %d", tbl.NumKeys())
	}
}

func TestUpdateChangesSize(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	key := []byte("grow")
	sizes := []int{2, 10, 100, 300, 5, 700, 3}
	for _, n := range sizes {
		val := bytes.Repeat([]byte{byte(n)}, n)
		if err := tbl.Put(key, val); err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		got, ok := tbl.Get(key)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("size %d: got %d bytes, ok=%v", n, len(got), ok)
		}
	}
	if tbl.NumKeys() != 1 {
		t.Errorf("NumKeys = %d after size-changing updates", tbl.NumKeys())
	}
}

func TestInlineVsNonInlinePlacement(t *testing.T) {
	tbl, _, alloc := testTable(t, 1<<20, 0.5, 15)
	// k+v = 8 <= 15: inline, no slab allocation.
	if err := tbl.Put([]byte("tiny"), []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if alloc.Stats().Allocs != 0 {
		t.Error("small KV should not touch the slab allocator")
	}
	// k+v = 54 > 15: slab-allocated.
	if err := tbl.Put([]byte("bigger"), bytes.Repeat([]byte{7}, 48)); err != nil {
		t.Fatal(err)
	}
	if alloc.Stats().Allocs == 0 {
		t.Error("large KV should be slab-allocated")
	}
}

func TestZeroInlineThresholdNeverInlines(t *testing.T) {
	tbl, _, alloc := testTable(t, 1<<20, 0.5, 0)
	if err := tbl.Put([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if alloc.Stats().Allocs == 0 {
		t.Error("offline mode should slab-allocate even tiny KVs")
	}
	got, ok := tbl.Get([]byte("a"))
	if !ok || string(got) != "b" {
		t.Errorf("offline Get = %q,%v", got, ok)
	}
}

func TestLargeValueChainsAcrossSlabs(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.3, 20)
	val := make([]byte, 3000) // needs ~6 chained 512 B slabs
	for i := range val {
		val[i] = byte(i * 31)
	}
	if err := tbl.Put([]byte("big"), val); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get([]byte("big"))
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("chained value corrupted: ok=%v len=%d", ok, len(got))
	}
	// Overwrite with same size: in-place rewrite.
	for i := range val {
		val[i] = byte(i * 7)
	}
	if err := tbl.Put([]byte("big"), val); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Get([]byte("big"))
	if !bytes.Equal(got, val) {
		t.Fatal("chained rewrite corrupted value")
	}
}

func TestDeleteFreesSlabMemory(t *testing.T) {
	tbl, _, alloc := testTable(t, 1<<20, 0.5, 10)
	before := alloc.FreeBytes()
	keys := make([][]byte, 50)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
		if err := tbl.Put(keys[i], bytes.Repeat([]byte{1}, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if alloc.FreeBytes() >= before {
		t.Fatal("allocations did not consume slab memory")
	}
	for _, k := range keys {
		if !tbl.Delete(k) {
			t.Fatalf("delete %q failed", k)
		}
	}
	if alloc.FreeBytes() != before {
		t.Errorf("slab memory leaked: %d -> %d", before, alloc.FreeBytes())
	}
}

func TestCollisionChaining(t *testing.T) {
	// One bucket: every key collides; chaining must still hold them all.
	mem := memory.New(1 << 16)
	idx := memory.Partition{Base: 0, Size: 64} // a single bucket
	alloc := slab.New(memory.Partition{Base: 64, Size: 1<<16 - 64}, slab.Options{})
	tbl, err := New(mem, alloc, Config{Index: idx, InlineThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if tbl.ChainBuckets() == 0 {
		t.Error("expected chained buckets with a single primary bucket")
	}
	for i := 0; i < n; i++ {
		v, ok := tbl.Get([]byte(fmt.Sprintf("k%03d", i)))
		if !ok || v[0] != byte(i) {
			t.Fatalf("get %d: %v %v", i, v, ok)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	if err := tbl.Put(nil, []byte("v")); err != ErrEmptyKey {
		t.Errorf("empty key: %v", err)
	}
	if err := tbl.Put(bytes.Repeat([]byte{1}, 256), []byte("v")); err != ErrKeyTooLarge {
		t.Errorf("long key: %v", err)
	}
	if err := tbl.Put([]byte("k"), make([]byte, 64<<10)); err != ErrValueTooLarge {
		t.Errorf("huge value: %v", err)
	}
}

func TestTableFull(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<14, 0.25, 0) // 16 KiB total, tiny slab area
	var err error
	for i := 0; err == nil && i < 10000; i++ {
		err = tbl.Put([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte{2}, 200))
	}
	if err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	// The table must still serve reads after filling up.
	if _, ok := tbl.Get([]byte("key-00000")); !ok {
		t.Error("Get failed after table filled")
	}
}

func TestGetAccessCountInline(t *testing.T) {
	// Paper: close to 1 memory access per GET for inline KVs under
	// non-extreme utilization.
	tbl, mem, _ := testTable(t, 1<<22, 0.6, 13)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tbl.Put(key10(i), val10(i)); err != nil {
			t.Fatal(err)
		}
	}
	mem.ResetStats()
	for i := 0; i < n; i++ {
		if _, ok := tbl.Get(key10(i)); !ok {
			t.Fatal("miss")
		}
	}
	per := float64(mem.Stats().Accesses()) / n
	if per > 1.15 {
		t.Errorf("inline GET = %.2f accesses/op, want ~1", per)
	}
}

func TestPutAccessCountInline(t *testing.T) {
	// Paper: close to 2 memory accesses per PUT (bucket read + write).
	tbl, mem, _ := testTable(t, 1<<22, 0.6, 13)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tbl.Put(key10(i), val10(i)); err != nil {
			t.Fatal(err)
		}
	}
	mem.ResetStats()
	for i := 0; i < n; i++ {
		if err := tbl.Put(key10(i), val10(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	per := float64(mem.Stats().Accesses()) / n
	if per > 2.3 {
		t.Errorf("inline PUT = %.2f accesses/op, want ~2", per)
	}
}

func TestNonInlineOneExtraAccess(t *testing.T) {
	// Paper: GET and PUT for non-inline KVs have one additional access.
	tbl, mem, _ := testTable(t, 1<<22, 0.3, 0)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tbl.Put(key10(i), bytes.Repeat([]byte{byte(i)}, 54)); err != nil {
			t.Fatal(err)
		}
	}
	mem.ResetStats()
	for i := 0; i < n; i++ {
		tbl.Get(key10(i))
	}
	perGet := float64(mem.Stats().Accesses()) / n
	if perGet > 2.2 {
		t.Errorf("non-inline GET = %.2f accesses/op, want ~2", perGet)
	}
	mem.ResetStats()
	for i := 0; i < n; i++ {
		if err := tbl.Put(key10(i), bytes.Repeat([]byte{byte(i + 1)}, 54)); err != nil {
			t.Fatal(err)
		}
	}
	perPut := float64(mem.Stats().Accesses()) / n
	// Same-footprint update: bucket read + data read (verify) + data write.
	if perPut > 3.3 {
		t.Errorf("non-inline PUT = %.2f accesses/op, want ~3", perPut)
	}
}

func key10(i int) []byte { return []byte(fmt.Sprintf("k%05d", i)) }      // 6 B key
func val10(i int) []byte { return []byte(fmt.Sprintf("v%03d", i%1000)) } // 4 B value

func TestAccessCountGrowsWithUtilization(t *testing.T) {
	// Figure 9b: memory accesses grow with utilization (more collisions).
	var lowUtil, highUtil float64
	for _, fill := range []struct {
		n    int
		dest *float64
	}{{500, &lowUtil}, {20000, &highUtil}} {
		tbl, mem, _ := testTable(t, 1<<20, 0.5, 13)
		for i := 0; i < fill.n; i++ {
			if err := tbl.Put(key10(i), val10(i)); err != nil {
				break
			}
		}
		mem.ResetStats()
		probes := fill.n
		if probes > 2000 {
			probes = 2000
		}
		for i := 0; i < probes; i++ {
			tbl.Get(key10(i))
		}
		*fill.dest = float64(mem.Stats().Accesses()) / float64(probes)
	}
	if highUtil <= lowUtil {
		t.Errorf("accesses should grow with utilization: low=%.2f high=%.2f",
			lowUtil, highUtil)
	}
}

func TestOracleProperty(t *testing.T) {
	// Random op sequences agree with a map oracle.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
		oracle := map[string][]byte{}
		keys := make([]string, 50)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%02d", i)
		}
		for op := 0; op < 1000; op++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0: // put with random size (inline, slab, or chained)
				n := rng.Intn(600)
				v := make([]byte, n)
				rng.Read(v)
				if err := tbl.Put([]byte(k), v); err != nil {
					return false
				}
				oracle[k] = v
			case 1: // get
				got, ok := tbl.Get([]byte(k))
				want, wantOK := oracle[k]
				if ok != wantOK || (ok && !bytes.Equal(got, want)) {
					return false
				}
			case 2: // delete
				got := tbl.Delete([]byte(k))
				_, want := oracle[k]
				if got != want {
					return false
				}
				delete(oracle, k)
			}
		}
		// Final sweep.
		for k, want := range oracle {
			got, ok := tbl.Get([]byte(k))
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		if tbl.NumKeys() != uint64(len(oracle)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPayloadAccounting(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	for _, kv := range []struct{ k, v []byte }{
		{[]byte("ab"), []byte("cdef")},               // 6 payload bytes
		{[]byte("xy"), bytes.Repeat([]byte{1}, 100)}, // 102
	} {
		if err := tbl.Put(kv.k, kv.v); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.PayloadBytes() != 108 {
		t.Errorf("payload = %d, want 108", tbl.PayloadBytes())
	}
	if err := tbl.Put([]byte("ab"), []byte("c")); err != nil { // 6 -> 3
		t.Fatal(err)
	}
	if tbl.PayloadBytes() != 105 {
		t.Errorf("payload after shrink = %d, want 105", tbl.PayloadBytes())
	}
	util := tbl.Utilization(1 << 20)
	if util != 105.0/(1<<20) {
		t.Errorf("utilization = %g", util)
	}
}

func TestSecondaryHashFalsePositiveSafety(t *testing.T) {
	// Keys are always compared even when secondary hashes collide, so no
	// wrong value can ever be returned. Brute-force many keys through a
	// tiny index to force secondary-hash collisions within buckets.
	mem := memory.New(1 << 18)
	idx := memory.Partition{Base: 0, Size: 128} // 2 buckets
	alloc := slab.New(memory.Partition{Base: 128, Size: 1<<18 - 128}, slab.Options{})
	tbl, _ := New(mem, alloc, Config{Index: idx, InlineThreshold: 0})
	const n = 300
	for i := 0; i < n; i++ {
		if err := tbl.Put(key10(i), []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := tbl.Get(key10(i))
		if !ok || string(v) != fmt.Sprintf("val-%05d", i) {
			t.Fatalf("key %d returned %q,%v", i, v, ok)
		}
	}
}

func TestNewRejectsTinyIndex(t *testing.T) {
	mem := memory.New(64)
	if _, err := New(mem, nil, Config{Index: memory.Partition{Size: 10}}); err == nil {
		t.Error("expected error for sub-bucket index")
	}
}

func TestInlineThresholdClamped(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 1000)
	if tbl.cfg.InlineThreshold != MaxInlineData-2 {
		t.Errorf("threshold = %d, want clamped to %d", tbl.cfg.InlineThreshold, MaxInlineData-2)
	}
	// A 48-byte payload fits exactly in 10 slots.
	key := []byte("12345678")
	val := bytes.Repeat([]byte{9}, 40)
	if err := tbl.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Error("max-size inline entry corrupted")
	}
}

// --- wall-clock micro-benchmarks of the table itself ---

func benchTable(b *testing.B, threshold, valSize int) (*Table, [][]byte) {
	b.Helper()
	mem := memory.New(64 << 20)
	idx, slabs := memory.Split(64<<20, 0.5)
	alloc := slab.New(slabs, slab.Options{})
	tbl, err := New(mem, alloc, Config{Index: idx, InlineThreshold: threshold, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([][]byte, 50000)
	val := bytes.Repeat([]byte{7}, valSize)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench-%06d", i))
		if err := tbl.Put(keys[i], val); err != nil {
			b.Fatal(err)
		}
	}
	return tbl, keys
}

func BenchmarkGetInline(b *testing.B) {
	tbl, keys := benchTable(b, 20, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkGetSlab(b *testing.B) {
	tbl, keys := benchTable(b, 0, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkPutUpdateInline(b *testing.B) {
	tbl, keys := benchTable(b, 20, 4)
	val := []byte{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Put(keys[i%len(keys)], val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutUpdateSlab(b *testing.B) {
	tbl, keys := benchTable(b, 0, 100)
	val := bytes.Repeat([]byte{9}, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Put(keys[i%len(keys)], val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanAll(b *testing.B) {
	tbl, _ := benchTable(b, 20, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tbl.Scan(func(_, _ []byte) bool { n++; return true })
		if n != 50000 {
			b.Fatalf("scan found %d", n)
		}
	}
}
