package hashtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScanVisitsEverything(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	want := map[string]string{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("scan-%04d", i)
		v := make([]byte, rng.Intn(400))
		rng.Read(v)
		if err := tbl.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		want[k] = string(v)
	}
	got := map[string]string{}
	tbl.Scan(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan found %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("scan value mismatch for %s", k)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	for i := 0; i < 100; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	tbl.Scan(func(_, _ []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d, want 10", n)
	}
}

func TestCheckCleanTable(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := make([]byte, rng.Intn(600))
		rng.Read(v)
		if err := tbl.Put([]byte(fmt.Sprintf("chk-%04d", i)), v); err != nil {
			t.Fatal(err)
		}
	}
	// Churn to exercise deletes and chained buckets.
	for i := 0; i < 300; i++ {
		tbl.Delete([]byte(fmt.Sprintf("chk-%04d", rng.Intn(1000))))
	}
	rep, err := tbl.Check()
	if err != nil {
		t.Fatalf("Check on clean table: %v", err)
	}
	if rep.Keys != tbl.NumKeys() {
		t.Errorf("report keys %d != %d", rep.Keys, tbl.NumKeys())
	}
	if rep.MaxChainLen < 1 || rep.AvgChainLen() < 1 {
		t.Errorf("chain stats implausible: %+v", rep)
	}
}

func TestCheckDetectsBucketCorruption(t *testing.T) {
	tbl, mem, _ := testTable(t, 1<<20, 0.5, 20)
	for i := 0; i < 200; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("c-%04d", i)), []byte("value!")); err != nil {
			t.Fatal(err)
		}
	}
	// Smash random bucket bytes until Check notices (some corruptions are
	// semantically invisible, e.g. bytes of free slots).
	rng := rand.New(rand.NewSource(3))
	detected := false
	for trial := 0; trial < 200 && !detected; trial++ {
		addr := uint64(rng.Intn(int(tbl.NumBuckets()))) * BucketBytes
		junk := make([]byte, 8)
		rng.Read(junk)
		mem.Poke(addr+uint64(rng.Intn(56)), junk)
		if _, err := tbl.Check(); err != nil {
			detected = true
		}
	}
	if !detected {
		t.Fatal("200 corruptions, none detected")
	}
}

func TestCheckDetectsAccountingDrift(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 20)
	if err := tbl.Put([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	tbl.numKeys++ // simulate an accounting bug
	if _, err := tbl.Check(); err == nil {
		t.Fatal("accounting drift undetected")
	}
	tbl.numKeys--
	tbl.payloadBytes += 7
	if _, err := tbl.Check(); err == nil {
		t.Fatal("payload drift undetected")
	}
}

func TestCheckAfterRandomWorkloadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, _, _ := testTable(t, 1<<19, 0.5, 15)
		for op := 0; op < 400; op++ {
			k := []byte(fmt.Sprintf("p-%02d", rng.Intn(40)))
			switch rng.Intn(3) {
			case 0:
				v := make([]byte, rng.Intn(300))
				rng.Read(v)
				if err := tbl.Put(k, v); err != nil {
					return err == ErrFull
				}
			case 1:
				tbl.Get(k)
			case 2:
				tbl.Delete(k)
			}
		}
		_, err := tbl.Check()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestScanDataMatchesGet(t *testing.T) {
	tbl, _, _ := testTable(t, 1<<20, 0.5, 13)
	for i := 0; i < 300; i++ {
		v := bytes.Repeat([]byte{byte(i)}, i%520)
		if err := tbl.Put([]byte(fmt.Sprintf("sv-%03d", i)), v); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Scan(func(k, v []byte) bool {
		got, ok := tbl.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("scan/get disagree on %q", k)
		}
		return true
	})
}
