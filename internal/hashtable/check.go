package hashtable

import (
	"errors"
	"fmt"
)

// ErrCorrupt wraps structural-invariant violations found by Check.
var ErrCorrupt = errors.New("hashtable: corrupt")

// Scan visits every stored KV pair in bucket order, calling fn with
// buffers that are only valid during the call; return false to stop
// early. Scan issues the same DMAs a full table walk would (one read per
// bucket plus one per non-inline KV), so it doubles as a migration /
// verification workload generator.
func (t *Table) Scan(fn func(key, value []byte) bool) {
	for b := uint64(0); b < t.numBuckets; b++ {
		bs := []*bkt{t.loadBucket(t.cfg.Index.Base + b*BucketBytes)}
		for {
			c, ok := chainAddr(bs[len(bs)-1].chain())
			if !ok {
				break
			}
			bs = append(bs, t.loadBucket(c))
		}
		for _, bb := range bs {
			stop := false
			bb.iterate(func(slot int, inline bool) bool {
				if inline {
					k, v, _ := bb.inlineEntry(slot)
					if !fn(k, v) {
						stop = true
						return true
					}
					return false
				}
				ptr, _ := bb.slotPtr(slot)
				k, v, ok := t.readData(ptr*ptrGranule, bb.typ(slot))
				if !ok {
					return false // Check reports this; Scan skips
				}
				if !fn(k, v) {
					stop = true
					return true
				}
				return false
			})
			if stop {
				return
			}
		}
	}
}

// CheckReport summarizes a structural verification pass.
type CheckReport struct {
	Keys         uint64
	PayloadBytes uint64
	ChainBuckets uint64
	MaxChainLen  int   // longest bucket chain (primary bucket = length 1)
	ChainLenSum  int   // for averaging
	ChainHist    []int // chain-length histogram, index = length-1
}

// AvgChainLen returns the mean bucket-chain length.
func (r CheckReport) AvgChainLen() float64 {
	if r.ChainHist == nil {
		return 0
	}
	n := 0
	for _, c := range r.ChainHist {
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(r.ChainLenSum) / float64(n)
}

// Check walks the entire table verifying structural invariants — the
// fsck of the KVS. It verifies per bucket:
//
//   - inline entries: start/occupancy bitmaps consistent, entry bytes
//     confined to the slot area, non-empty keys;
//   - pointer slots: data parses, the stored key is non-empty, its
//     secondary hash matches the slot, and it hashes back to this chain;
//   - chain pointers: bucket-aligned and inside the slab region;
//
// and globally that key/payload counts match the table's accounting.
func (t *Table) Check() (CheckReport, error) {
	var rep CheckReport
	for b := uint64(0); b < t.numBuckets; b++ {
		chainLen := 0
		addr := t.cfg.Index.Base + b*BucketBytes
		seen := map[uint64]bool{}
		for {
			if seen[addr] {
				return rep, fmt.Errorf("%w: bucket %d: chain cycle at %#x", ErrCorrupt, b, addr)
			}
			seen[addr] = true
			chainLen++
			bb := t.loadBucket(addr)
			if err := t.checkBucket(b, bb, &rep); err != nil {
				return rep, err
			}
			c := bb.chain()
			if c == 0 {
				break
			}
			next, _ := chainAddr(c)
			if next%BucketBytes != 0 {
				return rep, fmt.Errorf("%w: bucket %d: misaligned chain pointer %#x", ErrCorrupt, b, next)
			}
			if next < t.cfg.Index.End() {
				return rep, fmt.Errorf("%w: bucket %d: chain pointer %#x inside the hash index", ErrCorrupt, b, next)
			}
			rep.ChainBuckets++
			addr = next
		}
		if chainLen > rep.MaxChainLen {
			rep.MaxChainLen = chainLen
		}
		rep.ChainLenSum += chainLen
		for len(rep.ChainHist) < chainLen {
			rep.ChainHist = append(rep.ChainHist, 0)
		}
		rep.ChainHist[chainLen-1]++
	}
	if rep.Keys != t.numKeys {
		return rep, fmt.Errorf("%w: walked %d keys, accounting says %d", ErrCorrupt, rep.Keys, t.numKeys)
	}
	if rep.PayloadBytes != t.payloadBytes {
		return rep, fmt.Errorf("%w: walked %d payload bytes, accounting says %d",
			ErrCorrupt, rep.PayloadBytes, t.payloadBytes)
	}
	if rep.ChainBuckets != t.chainBuckets {
		return rep, fmt.Errorf("%w: walked %d chain buckets, accounting says %d",
			ErrCorrupt, rep.ChainBuckets, t.chainBuckets)
	}
	return rep, nil
}

// checkBucket verifies one bucket's slots.
func (t *Table) checkBucket(primary uint64, b *bkt, rep *CheckReport) error {
	i := 0
	for i < SlotsPerBucket {
		if !b.occupied(i) {
			if b.isStart(i) {
				return fmt.Errorf("%w: bucket %d slot %d: start bit without occupancy",
					ErrCorrupt, primary, i)
			}
			i++
			continue
		}
		if b.isStart(i) {
			klen := int(b.raw[i*SlotBytes])
			vlen := int(b.raw[i*SlotBytes+1])
			n := inlineSlots(klen + vlen)
			if klen == 0 {
				return fmt.Errorf("%w: bucket %d slot %d: empty inline key", ErrCorrupt, primary, i)
			}
			if i+n > SlotsPerBucket || i*SlotBytes+2+klen+vlen > slotArea {
				return fmt.Errorf("%w: bucket %d slot %d: inline entry overflows slot area",
					ErrCorrupt, primary, i)
			}
			for j := 1; j < n; j++ {
				if !b.occupied(i + j) {
					return fmt.Errorf("%w: bucket %d slot %d: continuation slot %d not occupied",
						ErrCorrupt, primary, i, i+j)
				}
				if b.isStart(i + j) {
					return fmt.Errorf("%w: bucket %d slot %d: continuation slot %d marked start",
						ErrCorrupt, primary, i, i+j)
				}
			}
			key, value, _ := b.inlineEntry(i)
			if t.bucketIndex(t.hash(key)) != primary {
				return fmt.Errorf("%w: bucket %d: inline key %q does not hash here",
					ErrCorrupt, primary, key)
			}
			rep.Keys++
			rep.PayloadBytes += uint64(klen + len(value))
			i += n
			continue
		}
		// Pointer slot.
		ptr, sh := b.slotPtr(i)
		dataAddr := ptr * ptrGranule
		if dataAddr < t.cfg.Index.End() {
			return fmt.Errorf("%w: bucket %d slot %d: data pointer %#x inside the hash index",
				ErrCorrupt, primary, i, dataAddr)
		}
		key, value, ok := t.readData(dataAddr, b.typ(i))
		if !ok {
			return fmt.Errorf("%w: bucket %d slot %d: unreadable KV data at %#x",
				ErrCorrupt, primary, i, dataAddr)
		}
		if len(key) == 0 {
			return fmt.Errorf("%w: bucket %d slot %d: empty stored key", ErrCorrupt, primary, i)
		}
		h := t.hash(key)
		if t.bucketIndex(h) != primary {
			return fmt.Errorf("%w: bucket %d slot %d: key %q does not hash here",
				ErrCorrupt, primary, i, key)
		}
		if sechash(h) != sh {
			return fmt.Errorf("%w: bucket %d slot %d: secondary hash mismatch",
				ErrCorrupt, primary, i)
		}
		rep.Keys++
		rep.PayloadBytes += uint64(len(key) + len(value))
		i++
	}
	return nil
}
