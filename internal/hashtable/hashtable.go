// Package hashtable implements the KV-Direct hash index (paper §3.3.1,
// Figure 5): a fixed array of 64-byte hash buckets, each holding 10
// five-byte hash slots (31-bit pointer + 9-bit secondary hash), 3 bits of
// slab type per slot, bitmaps marking inline KV pairs, and a pointer to
// the next chained bucket on collision.
//
// Small KVs are stored inline in the hash index, spanning one or more hash
// slots, to save the extra memory access for fetching KV data. Larger KVs
// live in dynamically allocated slab memory, addressed by a slot pointer
// at 32-byte granularity; the slot's slab-type bits tell the KV processor
// how many bytes to fetch in a single DMA. Values too large for one slab
// chain across 512-byte slabs.
//
// Chaining resolves hash collisions (chosen over cuckoo/hopscotch to
// balance GET and PUT cost and stay robust to hash clustering); chained
// buckets are allocated from the slab region.
//
// All table state lives in a memory.Engine, so every DMA the hardware
// would issue is counted by the underlying simulated memory — the
// measurements behind Figures 6, 9, 10 and 11.
package hashtable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"kvdirect/internal/memory"
	"kvdirect/internal/slab"
)

// Bucket geometry (Figure 5).
const (
	BucketBytes    = 64
	SlotsPerBucket = 10
	SlotBytes      = 5

	slotArea = SlotsPerBucket * SlotBytes // bytes 0..49: slot storage
	offTypes = 50                         // u32: 3 type bits per slot (30 bits)
	offStart = 54                         // u16: inline-entry start bitmap
	offOcc   = 56                         // u16: slot occupancy bitmap
	offChain = 58                         // u32: chained-bucket granule + 1

	// MaxInlineData is the most bytes one bucket can hold inline
	// (2-byte header + key + value across all 10 slots).
	MaxInlineData = slotArea

	ptrBits     = 31 // slot pointer width (32 B granules)
	sechashBits = 9  // secondary hash width (1/512 false positives)
	sechashMask = (1 << sechashBits) - 1

	ptrGranule = 32 // slot pointers address 32 B granules

	// Non-inline KV data layout: [klen u16][vlen u16][key][value...].
	dataHeader = 4
	// Chained value slabs reserve a trailing next-pointer.
	chainPtrBytes = 4
	chunkPayload  = slab.MaxSlab - chainPtrBytes // 508 B per chained slab
)

// Limits.
const (
	MaxKeyLen   = 255
	MaxValueLen = 64 << 10 // header stores vlen as u16; capped below 65536
)

// Errors returned by table operations.
var (
	ErrFull          = errors.New("hashtable: table full")
	ErrKeyTooLarge   = errors.New("hashtable: key exceeds 255 bytes")
	ErrValueTooLarge = errors.New("hashtable: value exceeds 64 KiB - 1")
	ErrEmptyKey      = errors.New("hashtable: empty key")
)

// Config parameterizes a Table.
type Config struct {
	// Index is the hash-index partition (a whole number of 64 B buckets).
	Index memory.Partition
	// InlineThreshold is the maximum key+value size stored inline in the
	// hash index. 0 disables inlining entirely ("offline" in Figure 9).
	// Values above MaxInlineData-2 are clamped.
	InlineThreshold int
	// Seed perturbs the hash function (deterministic experiments use
	// distinct seeds per trial).
	Seed uint64
}

// Table is the KV-Direct hash index over a memory engine plus slab
// allocator. It is not safe for concurrent use: the KV processor's
// out-of-order engine guarantees no two operations on the same key are in
// the pipeline simultaneously, and the pipeline itself serializes
// memory-engine access.
type Table struct {
	eng   memory.Engine
	alloc *slab.Allocator
	cfg   Config

	numBuckets uint64

	// Occupancy metrics.
	numKeys      uint64
	payloadBytes uint64 // sum of key+value sizes currently stored
	chainBuckets uint64 // chained buckets currently allocated

	// corruptChains counts chain walks cut short by the hop bound — a
	// symptom of a corrupted chain pointer (e.g. an undetected memory
	// fault) that would otherwise loop forever.
	corruptChains uint64
}

// New creates a table. The index partition must hold at least one bucket.
func New(eng memory.Engine, alloc *slab.Allocator, cfg Config) (*Table, error) {
	if cfg.Index.Size/BucketBytes == 0 {
		return nil, fmt.Errorf("hashtable: index partition too small (%d B)", cfg.Index.Size)
	}
	if cfg.InlineThreshold > MaxInlineData-2 {
		cfg.InlineThreshold = MaxInlineData - 2
	}
	return &Table{
		eng:        eng,
		alloc:      alloc,
		cfg:        cfg,
		numBuckets: cfg.Index.Size / BucketBytes,
	}, nil
}

// NumKeys returns the number of stored KV pairs.
func (t *Table) NumKeys() uint64 { return t.numKeys }

// PayloadBytes returns the total key+value bytes currently stored.
func (t *Table) PayloadBytes() uint64 { return t.payloadBytes }

// ChainBuckets returns the number of chained overflow buckets in use.
func (t *Table) ChainBuckets() uint64 { return t.chainBuckets }

// CorruptChains returns how many chain walks hit the hop bound.
func (t *Table) CorruptChains() uint64 { return t.corruptChains }

// NumBuckets returns the number of primary hash buckets.
func (t *Table) NumBuckets() uint64 { return t.numBuckets }

// Utilization returns payload bytes over the given total memory size —
// the paper's memory-utilization metric.
func (t *Table) Utilization(totalBytes uint64) float64 {
	if totalBytes == 0 {
		return 0
	}
	return float64(t.payloadBytes) / float64(totalBytes)
}

// --- hashing ---

func (t *Table) hash(key []byte) uint64 {
	// FNV-1a 64 with seed folding, then a finalizing mix.
	h := uint64(14695981039346656037) ^ t.cfg.Seed
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

func (t *Table) bucketIndex(h uint64) uint64 { return h % t.numBuckets }

func sechash(h uint64) uint16 { return uint16((h >> 48) & sechashMask) }

// --- bucket view ---

// bkt is one bucket loaded into the KV processor, plus dirtiness tracking
// so each mutated bucket costs exactly one DMA write per operation.
type bkt struct {
	addr  uint64
	raw   [BucketBytes]byte
	dirty bool
}

func (t *Table) loadBucket(addr uint64) *bkt {
	b := &bkt{addr: addr}
	t.eng.Read(addr, b.raw[:])
	return b
}

func (t *Table) flush(bs []*bkt) {
	for _, b := range bs {
		if b.dirty {
			t.eng.Write(b.addr, b.raw[:])
			b.dirty = false
		}
	}
}

func (b *bkt) occ() uint16     { return binary.LittleEndian.Uint16(b.raw[offOcc:]) }
func (b *bkt) starts() uint16  { return binary.LittleEndian.Uint16(b.raw[offStart:]) }
func (b *bkt) setOcc(v uint16) { binary.LittleEndian.PutUint16(b.raw[offOcc:], v) }
func (b *bkt) setStarts(v uint16) {
	binary.LittleEndian.PutUint16(b.raw[offStart:], v)
}

func (b *bkt) occupied(i int) bool { return b.occ()&(1<<i) != 0 }
func (b *bkt) isStart(i int) bool  { return b.starts()&(1<<i) != 0 }

func (b *bkt) setOccupied(i int, v bool) {
	o := b.occ()
	if v {
		o |= 1 << i
	} else {
		o &^= 1 << i
	}
	b.setOcc(o)
}

func (b *bkt) setStart(i int, v bool) {
	s := b.starts()
	if v {
		s |= 1 << i
	} else {
		s &^= 1 << i
	}
	b.setStarts(s)
}

func (b *bkt) typ(i int) uint8 {
	v := binary.LittleEndian.Uint32(b.raw[offTypes:])
	return uint8(v >> (3 * i) & 0x7)
}

func (b *bkt) setTyp(i int, c uint8) {
	v := binary.LittleEndian.Uint32(b.raw[offTypes:])
	v &^= 0x7 << (3 * i)
	v |= uint32(c&0x7) << (3 * i)
	binary.LittleEndian.PutUint32(b.raw[offTypes:], v)
}

func (b *bkt) chain() uint32 { return binary.LittleEndian.Uint32(b.raw[offChain:]) }
func (b *bkt) setChain(v uint32) {
	binary.LittleEndian.PutUint32(b.raw[offChain:], v)
}

// slotPtr decodes slot i's (granule pointer, secondary hash).
func (b *bkt) slotPtr(i int) (ptr uint64, sh uint16) {
	var v uint64
	for j := 0; j < SlotBytes; j++ {
		v |= uint64(b.raw[i*SlotBytes+j]) << (8 * j)
	}
	return v & ((1 << ptrBits) - 1), uint16(v >> ptrBits & sechashMask)
}

func (b *bkt) setSlotPtr(i int, ptr uint64, sh uint16) {
	v := ptr&((1<<ptrBits)-1) | uint64(sh&sechashMask)<<ptrBits
	for j := 0; j < SlotBytes; j++ {
		b.raw[i*SlotBytes+j] = byte(v >> (8 * j))
	}
}

// inlineSlots returns how many slots an inline entry of k+v payload needs.
func inlineSlots(kv int) int { return (2 + kv + SlotBytes - 1) / SlotBytes }

// entryRef locates a stored entry during a chain walk.
type entryRef struct {
	b      *bkt
	slot   int
	inline bool
	nslots int // inline: slots spanned
	klen   int
	vlen   int
	ptr    uint64 // non-inline: data address
	class  uint8  // non-inline: slab class of the first chunk
	value  []byte // decoded value
}

// iterate walks bucket b's entries, calling fn for each; fn returns true
// to stop. Continuation slots of inline entries are skipped.
func (b *bkt) iterate(fn func(slot int, inline bool) bool) {
	for i := 0; i < SlotsPerBucket; {
		if !b.occupied(i) {
			i++
			continue
		}
		if b.isStart(i) {
			klen := int(b.raw[i*SlotBytes])
			vlen := int(b.raw[i*SlotBytes+1])
			n := inlineSlots(klen + vlen)
			if fn(i, true) {
				return
			}
			i += n
		} else {
			if fn(i, false) {
				return
			}
			i++
		}
	}
}

// inlineEntry decodes the inline entry starting at slot i.
func (b *bkt) inlineEntry(i int) (key, value []byte, nslots int) {
	klen := int(b.raw[i*SlotBytes])
	vlen := int(b.raw[i*SlotBytes+1])
	base := i*SlotBytes + 2
	return b.raw[base : base+klen], b.raw[base+klen : base+klen+vlen], inlineSlots(klen + vlen)
}

// --- chain walking ---

// chainAddr converts a chain field to a bucket address (0 = none).
func chainAddr(c uint32) (uint64, bool) {
	if c == 0 {
		return 0, false
	}
	return uint64(c-1) * BucketBytes, true
}

func chainField(addr uint64) uint32 { return uint32(addr/BucketBytes) + 1 }

// maxChainHops bounds a chain walk. No healthy chain approaches this (it
// would need thousands of hash collisions on one bucket); a chain field
// corrupted into a cycle would otherwise walk forever.
const maxChainHops = 4096

// walk loads the bucket chain for hash h, returning all buckets. A chain
// longer than maxChainHops is treated as corrupt: the walk stops there
// and the event is counted, so a damaged pointer degrades to a miss
// instead of a hang.
func (t *Table) walk(h uint64) []*bkt {
	addr := t.cfg.Index.Base + t.bucketIndex(h)*BucketBytes
	bs := []*bkt{t.loadBucket(addr)}
	for {
		c, ok := chainAddr(bs[len(bs)-1].chain())
		if !ok {
			return bs
		}
		if len(bs) >= maxChainHops {
			t.corruptChains++
			return bs
		}
		bs = append(bs, t.loadBucket(c))
	}
}

// find searches the loaded chain for key, reading slab data to verify
// candidates whose secondary hash matches (the key is always checked to
// ensure correctness, at the cost of one additional memory access on the
// 1/512 false positives).
func (t *Table) find(bs []*bkt, key []byte, sh uint16) (entryRef, bool) {
	var ref entryRef
	found := false
	for _, b := range bs {
		b := b
		b.iterate(func(slot int, inline bool) bool {
			if inline {
				k, v, n := b.inlineEntry(slot)
				if bytes.Equal(k, key) {
					ref = entryRef{b: b, slot: slot, inline: true, nslots: n,
						klen: len(k), vlen: len(v), value: append([]byte(nil), v...)}
					found = true
					return true
				}
				return false
			}
			ptr, slotSH := b.slotPtr(slot)
			if slotSH != sh {
				return false
			}
			addr := ptr * ptrGranule
			class := b.typ(slot)
			k, v, ok := t.readData(addr, class)
			if !ok || !bytes.Equal(k, key) {
				return false // secondary-hash false positive
			}
			ref = entryRef{b: b, slot: slot, inline: false,
				klen: len(k), vlen: len(v), ptr: addr, class: class, value: v}
			found = true
			return true
		})
		if found {
			return ref, true
		}
	}
	return entryRef{}, false
}

// --- slab data encoding ---

// dataFootprint returns the slab chunks needed for a k+v payload: the
// class of the first chunk and the number of 512 B continuation chunks.
func dataFootprint(klen, vlen int) (class uint8, chunks int) {
	total := dataHeader + klen + vlen
	if total <= slab.MaxSlab {
		c, _ := slab.ClassFor(total)
		return uint8(c), 1
	}
	// Chained: every chunk is a 512 B slab with a trailing next pointer
	// (the last chunk's pointer is zero).
	n := (total + chunkPayload - 1) / chunkPayload
	return uint8(slab.NumClasses - 1), n
}

// writeData allocates and writes [klen][vlen][key][value], returning the
// address of the first chunk. On allocation failure it frees partial
// chunks and reports ErrFull.
func (t *Table) writeData(key, value []byte) (uint64, uint8, error) {
	class, chunks := dataFootprint(len(key), len(value))
	payload := make([]byte, dataHeader+len(key)+len(value))
	binary.LittleEndian.PutUint16(payload[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(payload[2:], uint16(len(value)))
	copy(payload[dataHeader:], key)
	copy(payload[dataHeader+len(key):], value)

	if chunks == 1 {
		addr, err := t.alloc.Alloc(len(payload))
		if err != nil {
			return 0, 0, ErrFull
		}
		t.eng.Write(addr, payload)
		return addr, class, nil
	}

	addrs := make([]uint64, chunks)
	for i := range addrs {
		a, err := t.alloc.Alloc(slab.MaxSlab)
		if err != nil {
			for _, done := range addrs[:i] {
				t.alloc.Free(done, slab.MaxSlab)
			}
			return 0, 0, ErrFull
		}
		addrs[i] = a
	}
	off := 0
	for i, a := range addrs {
		chunk := make([]byte, slab.MaxSlab)
		n := copy(chunk[:chunkPayload], payload[off:])
		off += n
		next := uint32(0)
		if i+1 < chunks {
			next = uint32(addrs[i+1]/ptrGranule) + 1
		}
		binary.LittleEndian.PutUint32(chunk[chunkPayload:], next)
		t.eng.Write(a, chunk)
	}
	return addrs[0], class, nil
}

// readData reads the KV data starting at addr with the given first-chunk
// class, following the chunk chain for large values. One DMA per chunk.
func (t *Table) readData(addr uint64, class uint8) (key, value []byte, ok bool) {
	if int(class) >= slab.NumClasses {
		return nil, nil, false
	}
	first := make([]byte, slab.Sizes[class])
	t.eng.Read(addr, first)
	klen := int(binary.LittleEndian.Uint16(first[0:]))
	vlen := int(binary.LittleEndian.Uint16(first[2:]))
	total := dataHeader + klen + vlen
	if total <= slab.Sizes[class] {
		return first[dataHeader : dataHeader+klen], first[dataHeader+klen : total], true
	}
	if slab.Sizes[class] != slab.MaxSlab {
		return nil, nil, false // corrupt: chained data must use 512 B chunks
	}
	payload := make([]byte, 0, total)
	payload = append(payload, first[:chunkPayload]...)
	next := binary.LittleEndian.Uint32(first[chunkPayload:])
	for len(payload) < total && next != 0 {
		chunk := make([]byte, slab.MaxSlab)
		t.eng.Read(uint64(next-1)*ptrGranule, chunk)
		payload = append(payload, chunk[:chunkPayload]...)
		next = binary.LittleEndian.Uint32(chunk[chunkPayload:])
	}
	if len(payload) < total {
		return nil, nil, false
	}
	return payload[dataHeader : dataHeader+klen], payload[dataHeader+klen : total], true
}

// freeData releases the chunk chain starting at addr.
func (t *Table) freeData(addr uint64, class uint8, klen, vlen int) {
	_, chunks := dataFootprint(klen, vlen)
	if chunks == 1 {
		t.alloc.Free(addr, dataHeader+klen+vlen)
		return
	}
	for i := 0; i < chunks; i++ {
		var next uint32
		if i+1 < chunks {
			var tail [chainPtrBytes]byte
			t.eng.Read(addr+chunkPayload, tail[:])
			next = binary.LittleEndian.Uint32(tail[:])
		}
		t.alloc.Free(addr, slab.MaxSlab)
		if next == 0 {
			break
		}
		addr = uint64(next-1) * ptrGranule
	}
}

// --- public operations ---

func validate(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > MaxKeyLen {
		return ErrKeyTooLarge
	}
	if len(value) >= MaxValueLen {
		return ErrValueTooLarge
	}
	return nil
}

// Get returns the value for key.
func (t *Table) Get(key []byte) ([]byte, bool) {
	if validate(key, nil) != nil {
		return nil, false
	}
	h := t.hash(key)
	bs := t.walk(h)
	ref, ok := t.find(bs, key, sechash(h))
	if !ok {
		return nil, false
	}
	return ref.value, true
}

// inlineOK reports whether a k+v payload should be stored inline.
func (t *Table) inlineOK(kv int) bool {
	return kv <= t.cfg.InlineThreshold && 2+kv <= MaxInlineData
}

// Put inserts or replaces key's value.
func (t *Table) Put(key, value []byte) error {
	if err := validate(key, value); err != nil {
		return err
	}
	h := t.hash(key)
	sh := sechash(h)
	bs := t.walk(h)
	ref, exists := t.find(bs, key, sh)

	if exists {
		if err := t.update(bs, ref, key, value, sh); err != nil {
			return err // old entry intact on failure
		}
		t.payloadBytes += uint64(len(key) + len(value))
		t.payloadBytes -= uint64(ref.klen + ref.vlen)
	} else {
		if err := t.insert(bs, key, value, sh); err != nil {
			return err
		}
		t.numKeys++
		t.payloadBytes += uint64(len(key) + len(value))
	}
	t.flush(bs)
	return nil
}

// update overwrites an existing entry, in place when the footprint allows.
// On a footprint change the new entry is inserted before the old one is
// removed, so a failed insert (table full) leaves the old value intact.
func (t *Table) update(bs []*bkt, ref entryRef, key, value []byte, sh uint16) error {
	kv := len(key) + len(value)
	if ref.inline && t.inlineOK(kv) && inlineSlots(kv) == ref.nslots {
		writeInline(ref.b, ref.slot, key, value)
		ref.b.dirty = true
		return nil
	}
	if !ref.inline && !t.inlineOK(kv) {
		oldClass, oldChunks := dataFootprint(ref.klen, ref.vlen)
		newClass, newChunks := dataFootprint(len(key), len(value))
		if oldClass == newClass && oldChunks == newChunks {
			// Same footprint: rewrite the data chunks in place, bucket
			// untouched (pointer, class and secondary hash unchanged).
			return t.rewriteData(ref.ptr, oldClass, key, value)
		}
	}
	// Footprint change: place the new entry first, then remove the old.
	if err := t.insert(bs, key, value, sh); err != nil {
		return err
	}
	if ref.inline {
		clearInline(ref.b, ref.slot, ref.nslots)
	} else {
		t.freeData(ref.ptr, ref.class, ref.klen, ref.vlen)
		ref.b.setOccupied(ref.slot, false)
		ref.b.setTyp(ref.slot, 0)
	}
	ref.b.dirty = true
	return nil
}

// rewriteData overwrites an existing same-footprint chunk chain.
func (t *Table) rewriteData(addr uint64, class uint8, key, value []byte) error {
	total := dataHeader + len(key) + len(value)
	payload := make([]byte, total)
	binary.LittleEndian.PutUint16(payload[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(payload[2:], uint16(len(value)))
	copy(payload[dataHeader:], key)
	copy(payload[dataHeader+len(key):], value)

	if total <= slab.MaxSlab {
		t.eng.Write(addr, payload)
		return nil
	}
	off := 0
	for {
		var tail [chainPtrBytes]byte
		t.eng.Read(addr+chunkPayload, tail[:])
		next := binary.LittleEndian.Uint32(tail[:])
		chunk := make([]byte, slab.MaxSlab)
		n := copy(chunk[:chunkPayload], payload[off:])
		off += n
		binary.LittleEndian.PutUint32(chunk[chunkPayload:], next)
		t.eng.Write(addr, chunk)
		if next == 0 || off >= total {
			return nil
		}
		addr = uint64(next-1) * ptrGranule
	}
}

// insert places a new entry somewhere in the chain, extending it with a
// freshly allocated bucket if necessary.
func (t *Table) insert(bs []*bkt, key, value []byte, sh uint16) error {
	kv := len(key) + len(value)
	if t.inlineOK(kv) {
		need := inlineSlots(kv)
		for _, b := range bs {
			if i, ok := findRun(b, need); ok {
				writeInline(b, i, key, value)
				b.dirty = true
				return nil
			}
		}
		nb, err := t.extendChain(bs)
		if err != nil {
			return err
		}
		writeInline(nb, 0, key, value)
		nb.dirty = true
		t.flush([]*bkt{nb})
		return nil
	}

	addr, class, err := t.writeData(key, value)
	if err != nil {
		return err
	}
	place := func(b *bkt, i int) {
		b.setSlotPtr(i, addr/ptrGranule, sh)
		b.setOccupied(i, true)
		b.setStart(i, false)
		b.setTyp(i, class)
		b.dirty = true
	}
	for _, b := range bs {
		if i, ok := findRun(b, 1); ok {
			place(b, i)
			return nil
		}
	}
	nb, err := t.extendChain(bs)
	if err != nil {
		t.freeData(addr, class, len(key), len(value))
		return err
	}
	place(nb, 0)
	t.flush([]*bkt{nb})
	return nil
}

// extendChain allocates a new chained bucket, links it from the chain tail
// and returns it. The new bucket is flushed by the caller; the tail link
// is flushed with the main chain.
func (t *Table) extendChain(bs []*bkt) (*bkt, error) {
	addr, err := t.alloc.Alloc(BucketBytes)
	if err != nil {
		return nil, ErrFull
	}
	nb := &bkt{addr: addr}
	tail := bs[len(bs)-1]
	tail.setChain(chainField(addr))
	tail.dirty = true
	t.chainBuckets++
	return nb, nil
}

// findRun returns the first index of `need` consecutive free slots.
func findRun(b *bkt, need int) (int, bool) {
	occ := b.occ()
	run := 0
	for i := 0; i < SlotsPerBucket; i++ {
		if occ&(1<<i) == 0 {
			run++
			if run == need {
				return i - need + 1, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// writeInline stores an inline entry at slot i (caller guarantees room).
func writeInline(b *bkt, i int, key, value []byte) {
	base := i * SlotBytes
	b.raw[base] = byte(len(key))
	b.raw[base+1] = byte(len(value))
	copy(b.raw[base+2:], key)
	copy(b.raw[base+2+len(key):], value)
	n := inlineSlots(len(key) + len(value))
	for j := 0; j < n; j++ {
		b.setOccupied(i+j, true)
		b.setStart(i+j, false)
		b.setTyp(i+j, 0)
	}
	b.setStart(i, true)
}

// clearInline removes the inline entry spanning [i, i+n).
func clearInline(b *bkt, i, n int) {
	for j := 0; j < n; j++ {
		b.setOccupied(i+j, false)
		b.setStart(i+j, false)
	}
}

// Delete removes key, returning whether it was present.
func (t *Table) Delete(key []byte) bool {
	if validate(key, nil) != nil {
		return false
	}
	h := t.hash(key)
	bs := t.walk(h)
	ref, ok := t.find(bs, key, sechash(h))
	if !ok {
		return false
	}
	if ref.inline {
		clearInline(ref.b, ref.slot, ref.nslots)
	} else {
		t.freeData(ref.ptr, ref.class, ref.klen, ref.vlen)
		ref.b.setOccupied(ref.slot, false)
		ref.b.setTyp(ref.slot, 0)
	}
	ref.b.dirty = true
	t.flush(bs)
	t.numKeys--
	t.payloadBytes -= uint64(ref.klen + ref.vlen)
	return true
}
