package lambda

import "testing"

// FuzzCompile: the expression compiler must never panic on arbitrary
// source, and anything it accepts must evaluate without panicking.
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		"v + p", "max(v, p)", "(v > p) * v + (v <= p) * p",
		"sat_add(v, p) % 7", "~v << 3", "0xFF & p", "v",
		"min(", "1 +", "(((", "v ? p", "18446744073709551615",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := Compile(src)
		if err != nil {
			return
		}
		// Evaluate on a spread of inputs, including extremes.
		for _, v := range []uint64{0, 1, 63, 64, 1 << 32, ^uint64(0)} {
			for _, p := range []uint64{0, 1, 64, ^uint64(0)} {
				fn(v, p)
			}
		}
		pred, err := CompilePredicate(src)
		if err != nil {
			t.Fatalf("Compile accepted %q but CompilePredicate rejected: %v", src, err)
		}
		pred(0)
		pred(^uint64(0))
	})
}
