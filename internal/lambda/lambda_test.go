package lambda

import (
	"math"
	"testing"
	"testing/quick"
)

func mustCompile(t *testing.T, src string) Func {
	t.Helper()
	f, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return f
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		v, p uint64
		want uint64
	}{
		{"v + p", 3, 4, 7},
		{"v - p", 10, 3, 7},
		{"v - p", 0, 1, math.MaxUint64}, // wraparound (hardware semantics)
		{"v * p", 6, 7, 42},
		{"v / p", 42, 6, 7},
		{"v / p", 42, 0, 0}, // divide by zero yields zero
		{"v % p", 42, 5, 2},
		{"v % p", 42, 0, 0},
		{"v & p", 0b1100, 0b1010, 0b1000},
		{"v | p", 0b1100, 0b1010, 0b1110},
		{"v ^ p", 0b1100, 0b1010, 0b0110},
		{"v << p", 1, 4, 16},
		{"v >> p", 16, 4, 1},
		{"v << p", 1, 64, 0}, // over-shift defined as zero
		{"v >> p", 1, 200, 0},
		{"~v", 0, 0, math.MaxUint64},
		{"v", 9, 0, 9},
		{"p", 0, 9, 9},
		{"acc + v", 5, 10, 15}, // acc aliases p (reduce accumulator)
		{"42", 0, 0, 42},
		{"0x2A", 0, 0, 42},
	}
	for _, c := range cases {
		f := mustCompile(t, c.src)
		if got := f(c.v, c.p); got != c.want {
			t.Errorf("%q(%d,%d) = %d, want %d", c.src, c.v, c.p, got, c.want)
		}
	}
}

func TestPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want uint64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 - 2 - 3", 5},  // left associative
		{"16 >> 2 + 1", 5}, // shift binds tighter than +: (16>>2)+1
		{"2 * 3 + 4 * 5", 26},
		{"~0 >> 63", (^uint64(0)) >> 63},
	}
	for _, c := range cases {
		f := mustCompile(t, c.src)
		if got := f(0, 0); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestBuiltinCalls(t *testing.T) {
	cases := []struct {
		src  string
		v, p uint64
		want uint64
	}{
		{"min(v, p)", 3, 9, 3},
		{"max(v, p)", 3, 9, 9},
		{"sat_add(v, p)", math.MaxUint64, 5, math.MaxUint64},
		{"sat_add(v, p)", 10, 5, 15},
		{"sat_sub(v, p)", 3, 9, 0},
		{"sat_sub(v, p)", 9, 3, 6},
		{"abs_diff(v, p)", 3, 9, 6},
		{"abs_diff(v, p)", 9, 3, 6},
		{"max(min(v, p), 10)", 3, 9, 10},
	}
	for _, c := range cases {
		f := mustCompile(t, c.src)
		if got := f(c.v, c.p); got != c.want {
			t.Errorf("%q(%d,%d) = %d, want %d", c.src, c.v, c.p, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	f := mustCompile(t, "v > p")
	if f(5, 3) != 1 || f(3, 5) != 0 {
		t.Error("v > p wrong")
	}
	// Conditional-style expression: (v > p) * v + (v <= p) * p == max.
	g := mustCompile(t, "(v > p) * v + (v <= p) * p")
	if g(7, 3) != 7 || g(3, 7) != 7 {
		t.Error("branchless max wrong")
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		src  string
		v    uint64
		want bool
	}{
		{"v != 0", 5, true},
		{"v != 0", 0, false},
		{"v & 1", 3, true},
		{"v & 1", 4, false},
		{"v > 100", 150, true},
		{"v % 3 == 0", 9, true},
		{"v % 3 == 0", 10, false},
	}
	for _, c := range cases {
		pr, err := CompilePredicate(c.src)
		if err != nil {
			t.Fatalf("CompilePredicate(%q): %v", c.src, err)
		}
		if got := pr(c.v); got != c.want {
			t.Errorf("%q(%d) = %v, want %v", c.src, c.v, got, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",                     // empty
		"v +",                  // dangling operator
		"(v + p",               // unbalanced paren
		"v p",                  // trailing token
		"min(v)",               // arity
		"foo(v, p)",            // unknown function
		"bogus",                // unknown identifier
		"v + + p",              // double operator
		"min(v, p",             // unclosed call
		"0xZZ",                 // bad hex
		"v < p < 1",            // comparisons do not chain
		"18446744073709551616", // overflows uint64
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestWhitespaceInsensitive(t *testing.T) {
	a := mustCompile(t, "v+p*2")
	b := mustCompile(t, "  v +\tp   * 2\n")
	for i := uint64(0); i < 100; i++ {
		if a(i, i+1) != b(i, i+1) {
			t.Fatal("whitespace changed semantics")
		}
	}
}

func TestFetchAddEquivalenceProperty(t *testing.T) {
	f := mustCompile(t, "v + p")
	g := func(v, p uint64) bool { return f(v, p) == v+p }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCompiledClosuresIndependent(t *testing.T) {
	// Two compilations share no state.
	f := mustCompile(t, "v + 1")
	g := mustCompile(t, "v * 2")
	if f(10, 0) != 11 || g(10, 0) != 20 || f(10, 0) != 11 {
		t.Error("compiled closures interfere")
	}
}

func TestDeterministicProperty(t *testing.T) {
	f := mustCompile(t, "max(v, p) ^ min(v << 1, p >> 1) + abs_diff(v, p)")
	g := func(v, p uint64) bool { return f(v, p) == f(v, p) }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
