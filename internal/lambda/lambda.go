// Package lambda compiles user-defined update functions from a small
// expression language into executable closures — the software analogue of
// KV-Direct's development toolchain (paper §3.2), which duplicates a
// user's λ, extracts data dependencies with an HLS tool and synthesizes
// fully pipelined hardware logic before the function can be used in
// update/reduce/filter operations.
//
// The language operates on unsigned 64-bit integers (vector elements are
// zero-extended, exactly as the execution engine sees them):
//
//	expr   := term (('+'|'-'|'|'|'^') term)*
//	term   := unary (('*'|'/'|'%'|'&'|'<<'|'>>') unary)*
//	unary  := '~' unary | primary
//	primary:= 'v' | 'p' | 'acc' | number | call | '(' expr ')'
//	call   := ('min'|'max'|'sat_add'|'sat_sub') '(' expr ',' expr ')'
//	         | ('abs_diff') '(' expr ',' expr ')'
//
// Identifiers: v is the stored element, p the client-supplied parameter
// (for reduce, p is the running accumulator Σ; acc is an alias).
// Numbers are decimal or 0x-hex. Division or modulo by zero yields zero
// (hardware semantics — no traps in a pipeline).
//
// Filter predicates use the same grammar through CompilePredicate, which
// treats a nonzero result as true and accepts comparison operators
// ('=='|'!='|'<'|'<='|'>'|'>=') at the lowest precedence.
package lambda

import (
	"fmt"
	"strconv"
	"strings"
)

// Func is a compiled update function: new = f(element, parameter).
type Func func(v, p uint64) uint64

// Pred is a compiled filter predicate.
type Pred func(v uint64) bool

// Compile parses and compiles an update expression.
func Compile(src string) (Func, error) {
	p := &parser{toks: lex(src), src: src}
	node, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("lambda: trailing input at %q", p.rest())
	}
	return func(v, param uint64) uint64 {
		return node.eval(env{v: v, p: param})
	}, nil
}

// CompilePredicate parses and compiles a filter predicate over v.
// The parameter p evaluates to zero inside predicates.
func CompilePredicate(src string) (Pred, error) {
	p := &parser{toks: lex(src), src: src}
	node, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("lambda: trailing input at %q", p.rest())
	}
	return func(v uint64) bool {
		return node.eval(env{v: v}) != 0
	}, nil
}

type env struct{ v, p uint64 }

// --- AST ---

type node interface {
	eval(env) uint64
}

type lit uint64

func (l lit) eval(env) uint64 { return uint64(l) }

type varV struct{}

func (varV) eval(e env) uint64 { return e.v }

type varP struct{}

func (varP) eval(e env) uint64 { return e.p }

type unop struct {
	op string
	x  node
}

func (u unop) eval(e env) uint64 {
	x := u.x.eval(e)
	switch u.op {
	case "~":
		return ^x
	}
	panic("lambda: bad unary " + u.op)
}

type binop struct {
	op   string
	a, b node
}

func (b binop) eval(e env) uint64 {
	x, y := b.a.eval(e), b.b.eval(e)
	switch b.op {
	case "+":
		return x + y
	case "-":
		return x - y
	case "*":
		return x * y
	case "/":
		if y == 0 {
			return 0
		}
		return x / y
	case "%":
		if y == 0 {
			return 0
		}
		return x % y
	case "&":
		return x & y
	case "|":
		return x | y
	case "^":
		return x ^ y
	case "<<":
		if y >= 64 {
			return 0
		}
		return x << y
	case ">>":
		if y >= 64 {
			return 0
		}
		return x >> y
	case "==":
		return b2u(x == y)
	case "!=":
		return b2u(x != y)
	case "<":
		return b2u(x < y)
	case "<=":
		return b2u(x <= y)
	case ">":
		return b2u(x > y)
	case ">=":
		return b2u(x >= y)
	}
	panic("lambda: bad binop " + b.op)
}

type call struct {
	fn   string
	a, b node
}

func (c call) eval(e env) uint64 {
	x, y := c.a.eval(e), c.b.eval(e)
	switch c.fn {
	case "min":
		if x < y {
			return x
		}
		return y
	case "max":
		if x > y {
			return x
		}
		return y
	case "sat_add":
		s := x + y
		if s < x {
			return ^uint64(0)
		}
		return s
	case "sat_sub":
		if y > x {
			return 0
		}
		return x - y
	case "abs_diff":
		if x > y {
			return x - y
		}
		return y - x
	}
	panic("lambda: bad call " + c.fn)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// --- lexer ---

type token struct {
	kind string // "num", "ident", or the operator literal
	text string
	val  uint64
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c >= '0' && c <= '9':
			j := i + 1
			base := 10
			if c == '0' && j < len(src) && (src[j] == 'x' || src[j] == 'X') {
				j++
				base = 16
				for j < len(src) && isHex(src[j]) {
					j++
				}
			} else {
				for j < len(src) && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			text := src[i:j]
			parseFrom := text
			if base == 16 {
				parseFrom = text[2:]
			}
			v, err := strconv.ParseUint(parseFrom, base, 64)
			if err != nil {
				toks = append(toks, token{kind: "err", text: text})
			} else {
				toks = append(toks, token{kind: "num", text: text, val: v})
			}
			i = j
		case isAlpha(c):
			j := i + 1
			for j < len(src) && (isAlpha(src[j]) || src[j] == '_' || (src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			toks = append(toks, token{kind: "ident", text: src[i:j]})
			i = j
		default:
			for _, op := range []string{"<<", ">>", "==", "!=", "<=", ">="} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{kind: op, text: op})
					i += 2
					goto next
				}
			}
			toks = append(toks, token{kind: string(c), text: string(c)})
			i++
		next:
		}
	}
	return toks
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// --- parser (precedence climbing) ---

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) rest() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos].kind
}

func (p *parser) take() token {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) expect(kind string) error {
	if p.peek() != kind {
		return fmt.Errorf("lambda: expected %q at %q in %q", kind, p.rest(), p.src)
	}
	p.pos++
	return nil
}

// parseCompare: expr (cmp expr)?  — comparisons do not chain.
func (p *parser) parseCompare() (node, error) {
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch op := p.peek(); op {
	case "==", "!=", "<", "<=", ">", ">=":
		p.take()
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return binop{op: op, a: left, b: right}, nil
	}
	return left, nil
}

func (p *parser) parseExpr() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch op := p.peek(); op {
		case "+", "-", "|", "^":
			p.take()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = binop{op: op, a: left, b: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTerm() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch op := p.peek(); op {
		case "*", "/", "%", "&", "<<", ">>":
			p.take()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = binop{op: op, a: left, b: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (node, error) {
	if p.peek() == "~" {
		p.take()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unop{op: "~", x: x}, nil
	}
	return p.parsePrimary()
}

var twoArgFns = map[string]bool{
	"min": true, "max": true, "sat_add": true, "sat_sub": true, "abs_diff": true,
}

func (p *parser) parsePrimary() (node, error) {
	switch p.peek() {
	case "num":
		return lit(p.take().val), nil
	case "ident":
		t := p.take()
		switch t.text {
		case "v":
			return varV{}, nil
		case "p", "acc":
			return varP{}, nil
		}
		if twoArgFns[t.text] {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			a, err := p.parseCompare()
			if err != nil {
				return nil, err
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
			b, err := p.parseCompare()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call{fn: t.text, a: a, b: b}, nil
		}
		return nil, fmt.Errorf("lambda: unknown identifier %q (want v, p, acc or a builtin)", t.text)
	case "(":
		p.take()
		inner, err := p.parseCompare()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case "err":
		return nil, fmt.Errorf("lambda: bad number %q", p.rest())
	default:
		return nil, fmt.Errorf("lambda: unexpected token %q in %q", p.rest(), p.src)
	}
}
