package kvdirect

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(Config{MemoryBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFacadeBasics(t *testing.T) {
	s := newStore(t)
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get([]byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	old, err := s.Update([]byte("n"), FnAdd, 8, 7)
	if err != nil || old != 0 {
		t.Fatalf("Update = %d,%v", old, err)
	}
}

func TestExecuteBatch(t *testing.T) {
	s := newStore(t)
	res := Execute(s, []Op{
		{Code: OpPut, Key: []byte("a"), Value: []byte("1")},
		{Code: OpGet, Key: []byte("a")},
		{Code: OpGet, Key: []byte("missing")},
	})
	if !res[0].OK() || !res[1].OK() || string(res[1].Value) != "1" {
		t.Errorf("batch results wrong: %+v", res[:2])
	}
	if !res[2].NotFound() {
		t.Errorf("missing key result: %+v", res[2])
	}
}

func TestEncodeDecodeBatchRoundTrip(t *testing.T) {
	ops := []Op{
		{Code: OpPut, Key: []byte("x"), Value: []byte("y")},
		{Code: OpGet, Key: []byte("x")},
	}
	pkt, err := EncodeBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) == 0 {
		t.Fatal("empty packet")
	}
	// Responses decode via DecodeResults (exercised through a store).
	s := newStore(t)
	res := Execute(s, ops)
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := newStore(t)
	// CAS on a missing key fails with ErrNotFound.
	if _, _, err := s.CompareAndSwap([]byte("cas"), 8, 0, 1); err != ErrNotFound {
		t.Fatalf("missing-key CAS err = %v", err)
	}
	mustPutU64(t, s, "cas", 10)
	old, swapped, err := s.CompareAndSwap([]byte("cas"), 8, 10, 20)
	if err != nil || !swapped || old != 10 {
		t.Fatalf("CAS(10->20) = %d,%v,%v", old, swapped, err)
	}
	old, swapped, err = s.CompareAndSwap([]byte("cas"), 8, 10, 30)
	if err != nil || swapped || old != 20 {
		t.Fatalf("failed CAS = %d,%v,%v (want observe 20, no swap)", old, swapped, err)
	}
	v, _ := s.Get([]byte("cas"))
	if binary.LittleEndian.Uint64(v) != 20 {
		t.Errorf("value after failed CAS = %d", binary.LittleEndian.Uint64(v))
	}
	// Width validation.
	if _, _, err := s.CompareAndSwap([]byte("cas"), 3, 0, 1); err != ErrBadWidth {
		t.Errorf("bad width: %v", err)
	}
	if err := s.Put([]byte("str"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CompareAndSwap([]byte("str"), 8, 0, 1); err != ErrBadScalar {
		t.Errorf("non-scalar CAS: %v", err)
	}
}

func TestCASLockSemantics(t *testing.T) {
	// A spin-lock built on CAS: repeated acquire/release cycles.
	s := newStore(t)
	mustPutU64(t, s, "lock", 0)
	for i := 0; i < 50; i++ {
		_, acquired, err := s.CompareAndSwap([]byte("lock"), 8, 0, 1)
		if err != nil || !acquired {
			t.Fatalf("acquire %d failed: %v %v", i, acquired, err)
		}
		// Second acquire must fail while held.
		if _, again, _ := s.CompareAndSwap([]byte("lock"), 8, 0, 1); again {
			t.Fatal("lock acquired twice")
		}
		if _, released, _ := s.CompareAndSwap([]byte("lock"), 8, 1, 0); !released {
			t.Fatal("release failed")
		}
	}
}

func mustPutU64(t *testing.T, s *Store, key string, v uint64) {
	t.Helper()
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	if err := s.Put([]byte(key), b); err != nil {
		t.Fatal(err)
	}
}

func TestClusterShardsAndRoutes(t *testing.T) {
	c, err := NewCluster(4, Config{MemoryBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumShards() != 4 {
		t.Fatalf("NumShards = %d", c.NumShards())
	}
	const n = 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("cluster-key-%05d", i))
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if c.NumKeys() != n {
		t.Fatalf("NumKeys = %d, want %d", c.NumKeys(), n)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("cluster-key-%05d", i))
		v, ok := c.Get(k)
		if !ok || !bytes.Equal(v, k) {
			t.Fatalf("key %d lost or corrupted", i)
		}
	}
	// Shards stay balanced (hash routing): no shard more than 2x the mean.
	counts := c.ShardKeyCounts()
	for i, cnt := range counts {
		if math.Abs(float64(cnt)-n/4.0) > n/8.0 {
			t.Errorf("shard %d has %d keys, want ~%d", i, cnt, n/4)
		}
	}
	// Deletes route correctly.
	if !c.Delete([]byte("cluster-key-00000")) {
		t.Error("delete failed")
	}
	if _, ok := c.Get([]byte("cluster-key-00000")); ok {
		t.Error("key survived delete")
	}
}

func TestClusterAtomicsIndependentPerShard(t *testing.T) {
	c, err := NewCluster(3, Config{MemoryBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("ctr-%d", i%30))
		if _, err := c.Update(key, FnAdd, 8, 1); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	total := uint64(0)
	for i := 0; i < 30; i++ {
		v, ok := c.Get([]byte(fmt.Sprintf("ctr-%d", i)))
		if !ok {
			t.Fatalf("counter %d missing", i)
		}
		total += binary.LittleEndian.Uint64(v)
	}
	if total != 300 {
		t.Errorf("counters sum to %d, want 300", total)
	}
}

func TestClusterRouteStable(t *testing.T) {
	c, _ := NewCluster(5, Config{MemoryBytes: 4 << 20})
	f := func(key []byte) bool {
		if len(key) == 0 {
			return true
		}
		return c.Shard(key) == c.Shard(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClusterRejectsZeroShards(t *testing.T) {
	if _, err := NewCluster(0, Config{}); err == nil {
		t.Error("zero-shard cluster accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	if !(Result{Status: StatusOK}).OK() || (Result{Status: StatusOK}).NotFound() {
		t.Error("OK result helpers wrong")
	}
	if !(Result{Status: StatusNotFound}).NotFound() || (Result{Status: StatusNotFound}).OK() {
		t.Error("NotFound result helpers wrong")
	}
}
